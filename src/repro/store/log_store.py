"""The log-structured store simulator.

This is the substrate every experiment in the paper runs on.  Like the
paper's simulator (Section 6.1.1), it "only writes page IDs instead of
page contents": the unit of obsolescence is the page, the unit of
reclamation is the segment, and the store tracks which slots hold current
versions so that the cleaning cost (page moves, write amplification) can
be measured exactly.

Responsibilities are split as follows:

* the **store** owns all state — page table, segment table, free list,
  open segments, the update-count clock, statistics — and implements the
  mechanical write / seal / allocate / clean-cycle machinery;
* the attached **cleaning policy** makes the two decisions the paper
  studies: *where to place pages* (stream routing and frequency sorting)
  and *which segments to clean next* (the priority order).

The "clock" is the user-update counter (paper Section 4.2): one tick per
user write, so update-frequency estimates are immune to wall-clock
artifacts such as load variation.

Cleaning cycle
--------------

When the number of free segments falls below ``config.clean_trigger`` the
store cleans a batch of victims chosen by the policy: their live pages are
staged in memory, the source segments are freed, and the pages are
re-written through the policy's GC placement hook.  Staging in memory
means relocation never deadlocks on free space — a batch with any empty
space makes net progress.  Each relocated page counts toward
``gc_writes`` (the numerator of write amplification).
"""

from __future__ import annotations

import math
from collections import deque
from typing import List, Optional, Sequence

from repro.store.buffer import SortBuffer
from repro.store.config import StoreConfig
from repro.store.errors import OutOfSpaceError, PageSizeError
from repro.store.pagetable import IN_BUFFER, IN_FLIGHT, NEVER_WRITTEN, PageTable
from repro.store.segments import FREE, OPEN, SEALED, SegmentTable
from repro.store.stats import StoreStats
from repro.testkit.failpoints import failpoint

#: Stream id used by policies that send relocated (GC) pages to their own
#: open segment, separate from user writes.
GC_STREAM = -1


class LogStructuredStore:
    """A simulated log-structured store with a pluggable cleaning policy.

    Args:
        config: Device geometry and cleaning parameters.
        policy: A cleaning policy (see :mod:`repro.policies`).  The store
            calls ``policy.bind(store)`` immediately.

    Example:
        >>> from repro.store import LogStructuredStore, StoreConfig
        >>> from repro.policies import make_policy
        >>> cfg = StoreConfig(n_segments=64, segment_units=32, fill_factor=0.5)
        >>> store = LogStructuredStore(cfg, make_policy("greedy"))
        >>> store.load_sequential(cfg.user_pages)
        >>> for page in range(100):
        ...     store.write(page % cfg.user_pages)
        >>> store.stats.user_writes >= 100
        True
    """

    def __init__(self, config: StoreConfig, policy) -> None:
        self.config = config
        self.segments = SegmentTable(config.n_segments, config.segment_units)
        self.pages = PageTable()
        self.stats = StoreStats()
        self.clock = 0
        #: FIFO free pool.  Order does not affect cleaning economics,
        #: but first-in-first-out rotation spreads erases evenly across
        #: segments (real FTLs do this for wear leveling); a LIFO stack
        #: would park a trigger's worth of segments forever.
        self.free_list = deque(range(config.n_segments))
        #: stream id -> currently open segment.  Invariant: every segment
        #: in this mapping has state OPEN.
        self.open_segments = {}
        self.policy = policy
        self._cleaning = False
        #: Fallback "coldish" up2 for first-writes placed outside a sorted
        #: batch (Section 5.2.2, "First Write").
        self._cold_up2 = 0.0
        if config.sort_buffer_segments > 0 and policy.uses_sort_buffer:
            self.buffer: Optional[SortBuffer] = SortBuffer(
                config.sort_buffer_segments * config.segment_units
            )
        else:
            self.buffer = None
        policy.bind(self)

    # ------------------------------------------------------------------
    # Public write API
    # ------------------------------------------------------------------

    def write(self, page_id: int, size: int = 1) -> None:
        """Apply one user update to ``page_id``.

        The previous version (if any) is invalidated, the update clock
        ticks, and the new version is placed either in the sorting buffer
        or directly into an open segment via the policy's routing.
        """
        if size < 1 or size > self.config.segment_units:
            raise PageSizeError(
                "page size %d outside [1, %d]" % (size, self.config.segment_units)
            )
        pages = self.pages
        if page_id >= len(pages.seg):
            pages.ensure(page_id)
        self.clock += 1
        self.stats.user_writes += 1

        old_seg = pages.seg[page_id]
        if old_seg >= 0:
            self._invalidate(page_id, old_seg)
            # The old slot is dead from this moment; cleaning can run
            # before the new version lands (buffer flush or direct emit),
            # so the stale pointer must not advertise the page as live.
            pages.seg[page_id] = IN_FLIGHT
        elif old_seg == IN_BUFFER:
            # Midpoint rule applied to the page's own carried estimate.
            carried = pages.carried_up2[page_id]
            if carried == carried:  # not NaN
                pages.carried_up2[page_id] = carried + 0.5 * (self.clock - carried)

        buffer = self.buffer
        if buffer is not None:
            if old_seg == IN_BUFFER:
                buffer.replace(page_id, size)
            else:
                if not buffer.fits(size):
                    self.flush()
                buffer.add(page_id, size)
                pages.seg[page_id] = IN_BUFFER
            pages.size[page_id] = size
        else:
            pages.size[page_id] = size
            if not (pages.carried_up2[page_id] == pages.carried_up2[page_id]):
                pages.carried_up2[page_id] = self._cold_up2
            self._emit(page_id, self.policy.route_user(page_id), is_gc=False)
        pages.last_write[page_id] = self.clock

    def load_sequential(self, n_pages: int, sizes: Optional[Sequence[int]] = None) -> None:
        """Write pages ``0 .. n_pages-1`` once each (the initial fill).

        These count as user writes; benchmarks exclude the load phase by
        measuring write amplification over a post-warm-up window.
        """
        if sizes is None:
            for pid in range(n_pages):
                self.write(pid)
        else:
            for pid in range(n_pages):
                self.write(pid, sizes[pid])

    def trim(self, page_id: int) -> bool:
        """Discard a page's current version without writing a new one
        (an SSD TRIM / a key-value delete).

        Frees the page's space for the cleaner immediately.  Counts as
        an update event on the containing segment — a delete is activity
        — and ticks the clock.  Returns False when the page holds no
        current version.
        """
        pages = self.pages
        if page_id >= len(pages.seg):
            return False
        old_seg = pages.seg[page_id]
        if old_seg == NEVER_WRITTEN:
            return False
        self.clock += 1
        self.stats.trims += 1
        if old_seg >= 0:
            self._invalidate(page_id, old_seg)
        elif old_seg == IN_BUFFER:
            self.buffer.remove(page_id)
        pages.seg[page_id] = NEVER_WRITTEN
        return True

    def flush(self) -> None:
        """Drain the sorting buffer into segments, sorted by the policy's
        user sort key (MDC sorts by carried ``up2``; Section 5.3)."""
        buffer = self.buffer
        if buffer is None or len(buffer) == 0:
            return
        failpoint("store.flush.pre_drain", buffered=len(buffer))
        pids = buffer.drain()
        self._resolve_first_writes(pids)
        keys = self.policy.user_sort_key(pids)
        if keys is not None:
            pids = [pid for _, pid in sorted(zip(keys, pids))]
        policy = self.policy
        for pid in pids:
            self._emit(pid, policy.route_user(pid), is_gc=False)

    def set_oracle_frequencies(self, freqs: Sequence[float]) -> None:
        """Install exact per-page update frequencies for the ``-opt``
        policy variants (the paper's "exact page update frequency").

        Must be called before any page covered by ``freqs`` is written,
        so segment ``freq_sum`` accounting stays consistent; to change a
        frequency mid-run use :meth:`set_page_frequency`.
        """
        self.pages.ensure(len(freqs) - 1)
        oracle = self.pages.oracle_freq
        for pid, f in enumerate(freqs):
            oracle[pid] = float(f)

    def set_page_frequency(self, page_id: int, freq: float) -> None:
        """Change one page's oracle frequency mid-run.

        Supports *dynamic* oracles — the paper's closing observation
        that "knowledge of workload may make it possible to better
        predict update frequency changes" (Section 8.2).  If the page is
        currently live in a segment, that segment's frequency sum is
        adjusted so MDC-opt's victim ranking stays consistent.
        """
        pages = self.pages
        if page_id >= len(pages.seg):
            pages.ensure(page_id)
        old = pages.oracle_freq[page_id]
        seg = pages.seg[page_id]
        if seg >= 0:
            self.segments.freq_sum[seg] += freq - old
        pages.oracle_freq[page_id] = freq

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------

    @property
    def free_segment_count(self) -> int:
        """Segments currently in the free pool."""
        return len(self.free_list)

    def sealed_segments(self) -> List[int]:
        """Ids of all sealed (cleanable) segments."""
        state = self.segments.state
        return [s for s in range(len(state)) if state[s] == SEALED]

    def fill_factor_now(self) -> float:
        """Current fraction of device units holding live data."""
        live = sum(self.segments.live_units)
        if self.buffer is not None:
            live += self.buffer.used_units
        return live / self.config.device_units

    def live_page_count(self) -> int:
        """Pages holding a current version anywhere (device or buffer)."""
        return sum(1 for s in self.pages.seg if s != NEVER_WRITTEN)

    def wear_summary(self) -> dict:
        """Per-segment erase (reclaim) statistics — flash wear, in the
        SSD framing.  ``cv`` is the coefficient of variation: 0 means
        perfectly even wear."""
        counts = self.segments.erase_count
        n = len(counts)
        total = sum(counts)
        mean = total / n
        if mean > 0.0:
            var = sum((c - mean) ** 2 for c in counts) / n
            cv = var ** 0.5 / mean
        else:
            cv = 0.0
        return {
            "total_erases": total,
            "mean": mean,
            "max": max(counts),
            "min": min(counts),
            "cv": cv,
        }

    # ------------------------------------------------------------------
    # Internals: invalidation, placement, sealing, allocation
    # ------------------------------------------------------------------

    def _invalidate(self, page_id: int, seg: int) -> None:
        """The current version of ``page_id`` in ``seg`` became obsolete."""
        segs = self.segments
        pages = self.pages
        segs.live_count[seg] -= 1
        segs.live_units[seg] -= pages.size[page_id]
        segs.freq_sum[seg] -= pages.oracle_freq[page_id]
        # Carry the page's update history forward (Section 5.2.2,
        # "Non-first Write"): prior up1 assumed midway between now and the
        # containing segment's up2, and it becomes the page's new up2.
        seg_up2 = segs.up2[seg]
        pages.carried_up2[page_id] = seg_up2 + 0.5 * (self.clock - seg_up2)
        # Advance the segment's last-two-updates pair (Section 4.3).
        segs.up2[seg] = segs.up1[seg]
        segs.up1[seg] = self.clock

    def _resolve_first_writes(self, pids: List[int]) -> None:
        """Give never-before-written pages a "coldish" up2: the oldest up2
        in the batch being processed (Section 5.2.2, "First Write")."""
        carried = self.pages.carried_up2
        known = [carried[p] for p in pids if carried[p] == carried[p]]
        cold = min(known) if known else self._cold_up2
        self._cold_up2 = cold
        for pid in pids:
            if not (carried[pid] == carried[pid]):
                carried[pid] = cold

    def _emit(self, page_id: int, stream: int, is_gc: bool) -> None:
        """Append ``page_id`` to the open segment of ``stream``, sealing
        and re-allocating as needed.

        Sealing removes the stream's map entry *before* any cleaning can
        run: cleaning relocates pages through this same method and (for
        policies whose GC shares streams with user writes) may re-open
        the very stream we are emitting to, so the open segment is
        re-fetched after the cleaning opportunity instead of being
        allocated eagerly — otherwise the recursion's segment would be
        orphaned in the OPEN state.
        """
        segs = self.segments
        pages = self.pages
        size = pages.size[page_id]
        seg = self.open_segments.get(stream)
        if seg is not None and segs.used_units[seg] + size > segs.capacity:
            self._seal(seg)
            del self.open_segments[stream]
            seg = None
        if seg is None:
            if not is_gc and not self._cleaning:
                self._clean_until_replenished()
                # Cleaning may have re-opened this very stream (GC can
                # share streams with user writes); re-fetch.
                seg = self.open_segments.get(stream)
                if seg is not None and segs.used_units[seg] + size > segs.capacity:
                    self._seal(seg)
                    del self.open_segments[stream]
                    seg = None
            if seg is None:
                seg = self._allocate()
                self.open_segments[stream] = seg
                self.policy.on_segment_open(seg, stream)
        slot = len(segs.slots[seg])
        segs.slots[seg].append(page_id)
        segs.slot_sizes[seg].append(size)
        pages.seg[page_id] = seg
        pages.slot[page_id] = slot
        segs.live_count[seg] += 1
        segs.live_units[seg] += size
        segs.used_units[seg] += size
        segs.up2_sum[seg] += pages.carried_up2[page_id]
        segs.freq_sum[seg] += pages.oracle_freq[page_id]
        if is_gc:
            self.stats.gc_writes += 1
        else:
            self.stats.user_device_writes += 1

    def _seal(self, seg: int) -> None:
        """Close a full segment: fix its seal time and initialize its
        update-history pair from the pages it received (Section 5.2.2,
        "Garbage Collection Writes")."""
        segs = self.segments
        segs.state[seg] = SEALED
        segs.seal_time[seg] = self.clock
        n_written = len(segs.slots[seg])
        up2 = segs.up2_sum[seg] / n_written
        # The clock only moves forward; an averaged estimate can still
        # exceed "now" only through float noise — clamp defensively.
        up2 = min(up2, float(self.clock))
        segs.up2[seg] = up2
        # up1 assumed midway between up2 and now, matching the paper's
        # midpoint assumption for unobserved last-update times.
        segs.up1[seg] = up2 + 0.5 * (self.clock - up2)

    def _clean_until_replenished(self) -> None:
        """Run cleaning cycles until the free pool recovers to the
        trigger.

        A single cycle nets only the victims' empty fraction, which for
        small batches (multi-log cleans one segment at a time) can be
        less than one segment, so the loop is required.  Cycles that
        reclaim no space at all are bounded so a degenerate policy fails
        fast instead of looping forever.
        """
        trigger = max(self.config.clean_trigger, self.policy.min_free_target())
        stalled = 0
        while len(self.free_list) < trigger:
            reclaimed_units = self.clean()
            if reclaimed_units == 0:
                stalled += 1
                if stalled > 2:
                    raise OutOfSpaceError(
                        "cleaning is not reclaiming space (policy=%s, free=%d)"
                        % (getattr(self.policy, "name", "?"), len(self.free_list))
                    )
            else:
                stalled = 0

    def _allocate(self) -> int:
        """Pop a free segment and mark it open."""
        if not self.free_list:
            raise OutOfSpaceError(
                "no free segments (fill factor too high or policy reclaimed nothing)"
            )
        seg = self.free_list.popleft()
        self.segments.state[seg] = OPEN
        return seg

    # ------------------------------------------------------------------
    # Cleaning
    # ------------------------------------------------------------------

    def clean(self, n_victims: Optional[int] = None) -> int:
        """Run one cleaning cycle; returns the units of space reclaimed
        (the victims' total available space).

        Victims are chosen by the policy; their live pages are staged,
        the victims freed, and the pages relocated through the policy's
        GC placement (which sorts / routes them by update frequency for
        the separating policies).
        """
        segs = self.segments
        pages = self.pages
        self._cleaning = True
        try:
            candidates = self.sealed_segments()
            if not candidates:
                raise OutOfSpaceError("nothing to clean: no sealed segments")
            victims = self.policy.select_victims(candidates, n_victims)
            if not victims:
                raise OutOfSpaceError("policy selected no victims")
            moved: List[int] = []
            sources: List[int] = []
            stats = self.stats
            reclaimed_units = 0
            for victim in victims:
                if segs.state[victim] != SEALED:
                    raise OutOfSpaceError(
                        "policy selected non-sealed victim %d (%s)"
                        % (victim, segs.state_name(victim))
                    )
                stats.segments_cleaned += 1
                stats.cleaned_emptiness_sum += segs.emptiness(victim)
                reclaimed_units += segs.available_units(victim)
                live = pages.live_pages_of(segs, victim)
                # GC'd pages carry their source segment's up2
                # (Section 5.2.2, "Garbage Collection Writes").
                src_up2 = segs.up2[victim]
                for pid in live:
                    pages.carried_up2[pid] = src_up2
                moved.extend(live)
                sources.extend([victim] * len(live))
            failpoint("store.clean.pre_relocate", victims=victims, moved=moved)
            placements = list(self.policy.place_gc(moved, sources))
            for victim in victims:
                segs.reset(victim)
                self.free_list.append(victim)
            for pid, stream in placements:
                self._emit(pid, stream, is_gc=True)
            stats.clean_cycles += 1
            return reclaimed_units
        finally:
            self._cleaning = False

    # ------------------------------------------------------------------
    # Invariant checking (used by tests; cheap enough for debugging runs)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify internal consistency; raises AssertionError on breakage.

        Checked invariants:
        * every segment is in exactly one of free list / open map / sealed;
        * per-segment live counts and unit accounting match slot liveness;
        * every live page-table entry points at a matching slot;
        * total live units never exceed device capacity.
        """
        segs = self.segments
        pages = self.pages
        n = len(segs)
        free = set(self.free_list)
        assert len(free) == len(self.free_list), "duplicate segments in free list"
        open_now = set(self.open_segments.values())
        for s in range(n):
            st = segs.state[s]
            if s in free:
                assert st == FREE, segs.describe(s)
            elif s in open_now:
                assert st == OPEN, segs.describe(s)
            else:
                assert st == SEALED or st == FREE, segs.describe(s)
            live = pages.live_pages_of(segs, s)
            assert segs.live_count[s] == len(live), segs.describe(s)
            live_units = sum(pages.size[p] for p in live)
            assert segs.live_units[s] == live_units, segs.describe(s)
            freq_sum = sum(pages.oracle_freq[p] for p in live)
            assert abs(segs.freq_sum[s] - freq_sum) < 1e-6 * max(1.0, freq_sum), (
                segs.describe(s)
            )
            assert segs.used_units[s] <= segs.capacity, segs.describe(s)
            assert segs.live_units[s] <= segs.used_units[s], segs.describe(s)
        total_live = sum(segs.live_units)
        assert total_live <= self.config.device_units
        for pid in range(len(pages.seg)):
            seg = pages.seg[pid]
            if seg >= 0:
                assert segs.slots[seg][pages.slot[pid]] == pid, (
                    "page %d points at slot that holds another page" % pid
                )
            elif seg == IN_BUFFER:
                assert self.buffer is not None and pid in self.buffer

    def __repr__(self) -> str:
        return (
            "<LogStructuredStore segs=%d free=%d clock=%d user_writes=%d "
            "gc_writes=%d policy=%s>"
            % (
                self.config.n_segments,
                len(self.free_list),
                self.clock,
                self.stats.user_writes,
                self.stats.gc_writes,
                getattr(self.policy, "name", type(self.policy).__name__),
            )
        )


def segments_needed(units: int, segment_units: int) -> int:
    """Number of whole segments needed to hold ``units`` of data."""
    return int(math.ceil(units / segment_units))
