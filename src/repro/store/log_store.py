"""The log-structured store simulator.

This is the substrate every experiment in the paper runs on.  Like the
paper's simulator (Section 6.1.1), it "only writes page IDs instead of
page contents": the unit of obsolescence is the page, the unit of
reclamation is the segment, and the store tracks which slots hold current
versions so that the cleaning cost (page moves, write amplification) can
be measured exactly.

Responsibilities are split as follows:

* the **store** owns all state — page table, segment table, free list,
  open segments, the update-count clock, statistics — and implements the
  mechanical write / seal / allocate / clean-cycle machinery;
* the attached **cleaning policy** makes the two decisions the paper
  studies: *where to place pages* (stream routing and frequency sorting)
  and *which segments to clean next* (the priority order).

The "clock" is the user-update counter (paper Section 4.2): one tick per
user write, so update-frequency estimates are immune to wall-clock
artifacts such as load variation.

Write paths
-----------

:meth:`LogStructuredStore.write` is the scalar reference path: one page
per call, one branch per bookkeeping rule.  :meth:`write_batch` is the
vectorized engine the benchmarks drive: it splits a workload batch into
*runs* — maximal prefixes with distinct page ids that fit the open
segment (or the sorting buffer) — applies each run's bookkeeping with
numpy fancy indexing, and falls back to the scalar path for exactly the
writes that cross a seal / flush / clean boundary.  The two paths are
bit-identical: every float accumulation in the batch path replays the
scalar update order (``np.add.at`` and ``np.cumsum`` are sequential
left-to-right folds), which the differential test suite locks down by
comparing full state digests.

Cleaning cycle
--------------

When the number of free segments falls below ``config.clean_trigger`` the
store cleans a batch of victims chosen by the policy: their live pages are
staged in memory, the source segments are freed, and the pages are
re-written through the policy's GC placement hook.  Staging in memory
means relocation never deadlocks on free space — a batch with any empty
space makes net progress.  Each relocated page counts toward
``gc_writes`` (the numerator of write amplification).

The cycle is also exposed *incrementally*: :meth:`clean_begin` pins the
victim decision, stages the live pages, and frees the victims, and
:meth:`clean_step` relocates a bounded number of pages at a time through
an explicit resume cursor (:class:`CleanCursor`), so foreground writes
can interleave between steps.  ``clean()`` is now ``clean_begin`` plus a
single unbounded ``clean_step`` — the two paths share every line of the
cycle, and a full drain is byte-identical to the historical batch cycle
(the differential suite locks this down with state digests).  Staged
pages carry the ``IN_RELOCATION`` page-table sentinel; a foreground
write or trim landing on one clears the sentinel, and the cleaner skips
the now-obsolete staged copy when its step resumes, crediting the
skipped space to ``cleaned_emptiness_sum`` so the paper's exact
Equation 2 identity keeps holding under arbitrary preemption schedules.
"""

from __future__ import annotations

import math
from collections import deque
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.store.buffer import SortBuffer
from repro.store.config import StoreConfig
from repro.store.errors import OutOfSpaceError, PageSizeError, StoreError
from repro.store.kernels import fold_add as _fold_add
from repro.store.kernels import prev_occurrence as _prev_occurrence
from repro.store.pagetable import (
    IN_BUFFER,
    IN_FLIGHT,
    IN_RELOCATION,
    NEVER_WRITTEN,
    PageTable,
)
from repro.store.segments import FREE, OPEN, SEALED, SegmentTable
from repro.store.stats import StoreStats
from repro.testkit.failpoints import failpoint

#: Stream id used by policies that send relocated (GC) pages to their own
#: open segment, separate from user writes.
GC_STREAM = -1

#: Batch chunk for the sequential load (one workload batch's worth).
_LOAD_CHUNK = 1 << 14

#: How far ahead a run may scan for a duplicate page id before chunking.
_DUP_WINDOW = 1 << 12


def _stream_runs(streams: np.ndarray):
    """Yield ``(start, stop)`` bounds of maximal constant-stream runs."""
    n = streams.size
    bounds = np.flatnonzero(np.diff(streams) != 0) + 1
    starts = np.concatenate(([0], bounds))
    stops = np.concatenate((bounds, [n]))
    return zip(starts.tolist(), stops.tolist())


class CleanCursor:
    """Resumable state of one (possibly incremental) cleaning cycle.

    Everything decision-shaped is pinned at
    :meth:`LogStructuredStore.clean_begin` — the victim set, the staged
    page list, and the policy's GC placement order — so a preemption
    point can never change *what* the cycle does, only *when*.  ``pos``
    is the explicit resume cursor into the staged placement order: a
    cycle interrupted mid-victim resumes at the exact page where it
    stopped, and resuming is idempotent (already-processed positions are
    never revisited).
    """

    __slots__ = (
        "victims",
        "pending",
        "streams",
        "sizes",
        "pos",
        "reclaimed_units",
        "emptiness",
        "relocated",
        "skipped",
    )

    def __init__(
        self,
        victims: List[int],
        pending: np.ndarray,
        streams: Optional[np.ndarray],
        sizes: np.ndarray,
        reclaimed_units: int,
        emptiness: np.ndarray,
    ) -> None:
        #: Victim segment ids in selection order (already freed).
        self.victims = victims
        #: Staged page ids in the policy's placement order.
        self.pending = pending
        #: Per-position GC stream ids (None = everything to GC_STREAM).
        self.streams = streams
        #: Staged sizes, captured at begin (a staged page's table size
        #: may be overwritten by a foreground write before its turn).
        self.sizes = sizes
        #: Next placement position to process.
        self.pos = 0
        #: Victims' empty units, the cycle's net space gain.
        self.reclaimed_units = reclaimed_units
        #: Per-victim emptiness fractions (for the on_clean hook).
        self.emptiness = emptiness
        #: Pages actually re-emitted so far (== gc_writes contributed).
        self.relocated = 0
        #: Staged copies dropped because a foreground write or trim
        #: obsoleted them between steps.
        self.skipped = 0

    @property
    def remaining(self) -> int:
        """Staged positions not yet processed."""
        return int(self.pending.size - self.pos)


class LogStructuredStore:
    """A simulated log-structured store with a pluggable cleaning policy.

    Args:
        config: Device geometry and cleaning parameters.
        policy: A cleaning policy (see :mod:`repro.policies`).  The store
            calls ``policy.bind(store)`` immediately.

    Example:
        >>> from repro.store import LogStructuredStore, StoreConfig
        >>> from repro.policies import make_policy
        >>> cfg = StoreConfig(n_segments=64, segment_units=32, fill_factor=0.5)
        >>> store = LogStructuredStore(cfg, make_policy("greedy"))
        >>> store.load_sequential(cfg.user_pages)
        >>> for page in range(100):
        ...     store.write(page % cfg.user_pages)
        >>> store.stats.user_writes >= 100
        True
    """

    def __init__(self, config: StoreConfig, policy) -> None:
        self.config = config
        self.segments = SegmentTable(config.n_segments, config.segment_units)
        self.pages = PageTable()
        self.stats = StoreStats()
        self.clock = 0
        #: FIFO free pool.  Order does not affect cleaning economics,
        #: but first-in-first-out rotation spreads erases evenly across
        #: segments (real FTLs do this for wear leveling); a LIFO stack
        #: would park a trigger's worth of segments forever.
        self.free_list = deque(range(config.n_segments))
        #: stream id -> currently open segment.  Invariant: every segment
        #: in this mapping has state OPEN.
        self.open_segments = {}
        self.policy = policy
        #: Attached :class:`~repro.obs.observer.StoreObserver`, or None.
        #: Hooks fire only at per-segment sites (seal / flush / clean),
        #: so the disabled cost is one attribute test per such site.
        self.obs = None
        self._cleaning = False
        #: Active incremental cleaning cycle, or None (see clean_begin).
        self._clean_cursor: Optional[CleanCursor] = None
        #: Fallback "coldish" up2 for first-writes placed outside a sorted
        #: batch (Section 5.2.2, "First Write").
        self._cold_up2 = 0.0
        #: Cached ascending array of sealed segment ids, rebuilt lazily
        #: when a seal or a clean invalidated it.
        self._sealed_cache = np.empty(0, dtype=np.int64)
        self._sealed_dirty = True
        if config.sort_buffer_segments > 0 and policy.uses_sort_buffer:
            self.buffer: Optional[SortBuffer] = SortBuffer(
                config.sort_buffer_segments * config.segment_units
            )
        else:
            self.buffer = None
        policy.bind(self)

    # ------------------------------------------------------------------
    # Public write API
    # ------------------------------------------------------------------

    def write(self, page_id: int, size: int = 1) -> None:
        """Apply one user update to ``page_id``.

        The previous version (if any) is invalidated, the update clock
        ticks, and the new version is placed either in the sorting buffer
        or directly into an open segment via the policy's routing.
        """
        if size < 1 or size > self.config.segment_units:
            raise PageSizeError(
                "page size %d outside [1, %d]" % (size, self.config.segment_units)
            )
        pages = self.pages
        if page_id >= len(pages.seg):
            pages.ensure(page_id)
        self.clock += 1
        self.stats.user_writes += 1

        old_seg = pages.seg[page_id]
        if old_seg >= 0:
            self._invalidate(page_id, old_seg)
            # The old slot is dead from this moment; cleaning can run
            # before the new version lands (buffer flush or direct emit),
            # so the stale pointer must not advertise the page as live.
            pages.seg[page_id] = IN_FLIGHT
        elif old_seg == IN_BUFFER:
            # Midpoint rule applied to the page's own carried estimate.
            carried = pages.carried_up2[page_id]
            if carried == carried:  # not NaN
                pages.carried_up2[page_id] = carried + 0.5 * (self.clock - carried)
        elif old_seg == IN_RELOCATION:
            # The page was staged by a mid-flight incremental cleaning
            # cycle; this write obsoletes the staged copy.  Clear the
            # sentinel *before* anything below can run cleaning (a
            # buffer flush or an allocation drains the cursor), so the
            # cleaner skips the stale copy instead of re-emitting it
            # after this newer version has landed.
            pages.seg[page_id] = IN_FLIGHT

        buffer = self.buffer
        if buffer is not None:
            if old_seg == IN_BUFFER:
                buffer.replace(page_id, size)
            else:
                if not buffer.fits(size):
                    self.flush()
                buffer.add(page_id, size)
                pages.seg[page_id] = IN_BUFFER
            pages.size[page_id] = size
        else:
            pages.size[page_id] = size
            if not (pages.carried_up2[page_id] == pages.carried_up2[page_id]):
                pages.carried_up2[page_id] = self._cold_up2
            self._emit(page_id, self.policy.route_user(page_id), is_gc=False)
        pages.last_write[page_id] = self.clock

    def write_batch(
        self,
        page_ids: Sequence[int],
        sizes: Optional[Sequence[int]] = None,
    ) -> None:
        """Apply a batch of user updates — equivalent to calling
        :meth:`write` once per element, but vectorized.

        The batch is consumed as runs of *distinct* page ids that fit the
        current open segment (direct placement) or the sorting buffer;
        each run's invalidation, placement, and statistics bookkeeping is
        applied with array operations that replay the exact scalar update
        order, so batch and scalar execution produce byte-identical state
        (the testkit's :func:`~repro.testkit.trace.state_digest` is the
        oracle for this).  Writes at a seal / flush / clean boundary —
        and whole batches for policies whose routing is inherently
        per-page (multi-log) — go through the scalar path.
        """
        pids = np.ascontiguousarray(page_ids, dtype=np.int64)
        if pids.ndim != 1:
            raise ValueError("page_ids must be one-dimensional")
        n = pids.size
        if n == 0:
            return
        size_arr: Optional[np.ndarray] = None
        if sizes is not None:
            size_arr = np.ascontiguousarray(sizes, dtype=np.int64)
            if size_arr.shape != pids.shape:
                raise ValueError("sizes must be parallel to page_ids")
            if (
                size_arr.min() < 1
                or size_arr.max() > self.config.segment_units
            ):
                # An invalid size must fail exactly where the scalar loop
                # would: after the preceding valid writes were applied.
                self._write_scalar_span(pids, size_arr, 0, n)
                return
        self.pages.ensure(int(pids.max()))

        routes: Optional[np.ndarray] = None
        uniform_routes = False
        if self.buffer is None:
            routes = self.policy.route_user_batch(pids)
            if routes is None:
                # Routing depends on per-write state; the scalar path is
                # the only faithful execution.
                self._write_scalar_span(pids, size_arr, 0, n)
                return
            routes = np.ascontiguousarray(routes, dtype=np.int64)
            if routes.shape != pids.shape:
                raise ValueError("route_user_batch returned a bad shape")
            uniform_routes = bool((routes == routes[0]).all())

        prev = _prev_occurrence(pids)
        direct = self.buffer is None
        start = 0
        while start < n:
            stop = min(n, start + _DUP_WINDOW)
            if direct:
                # The direct path handles repeated page ids inside a run
                # (the dup's old location is a known slot of the open
                # segment); runs break only at stream changes and
                # capacity boundaries.
                limit = stop
            else:
                # The buffered path replays rewrites through the sort
                # buffer's replace bookkeeping; a repeated id ends the
                # run so table state is committed before it recurs.
                dup = np.flatnonzero(prev[start:stop] >= start)
                limit = start + int(dup[0]) if dup.size else stop
            run = pids[start:limit]
            run_sizes = None if size_arr is None else size_arr[start:limit]
            if not direct:
                took = self._write_run_buffered(run, run_sizes)
            else:
                took = self._write_run_direct(
                    run,
                    run_sizes,
                    routes[start:limit],
                    uniform_routes,
                    prev[start:limit] - start,
                )
            if took == 0:
                # Boundary write: the next write seals, flushes, or
                # cleans; the scalar path handles those transitions.
                self._write_scalar_span(pids, size_arr, start, start + 1)
                took = 1
            start += took

    def _write_scalar_span(
        self,
        pids: np.ndarray,
        size_arr: Optional[np.ndarray],
        start: int,
        stop: int,
    ) -> None:
        """Feed ``pids[start:stop]`` through the scalar write path."""
        if size_arr is None:
            for i in range(start, stop):
                self.write(int(pids[i]))
        else:
            for i in range(start, stop):
                self.write(int(pids[i]), int(size_arr[i]))

    def load_sequential(self, n_pages: int, sizes: Optional[Sequence[int]] = None) -> None:
        """Write pages ``0 .. n_pages-1`` once each (the initial fill).

        These count as user writes; benchmarks exclude the load phase by
        measuring write amplification over a post-warm-up window.
        """
        ids = np.arange(n_pages, dtype=np.int64)
        size_arr = None if sizes is None else np.asarray(sizes, dtype=np.int64)
        for start in range(0, n_pages, _LOAD_CHUNK):
            chunk = ids[start:start + _LOAD_CHUNK]
            self.write_batch(
                chunk,
                None if size_arr is None else size_arr[start:start + _LOAD_CHUNK],
            )

    def trim(self, page_id: int) -> bool:
        """Discard a page's current version without writing a new one
        (an SSD TRIM / a key-value delete).

        Frees the page's space for the cleaner immediately.  Counts as
        an update event on the containing segment — a delete is activity
        — and ticks the clock.  Returns False when the page holds no
        current version.
        """
        pages = self.pages
        if page_id >= len(pages.seg):
            return False
        old_seg = pages.seg[page_id]
        if old_seg == NEVER_WRITTEN:
            return False
        self.clock += 1
        self.stats.trims += 1
        if old_seg >= 0:
            self._invalidate(page_id, old_seg)
        elif old_seg == IN_BUFFER:
            self.buffer.remove(page_id)
        # An IN_RELOCATION page needs neither: its victim slot is gone
        # and the staged copy lives in cleaner memory — clearing the
        # sentinel below is what makes the cleaner drop it.
        pages.seg[page_id] = NEVER_WRITTEN
        return True

    def flush(self) -> None:
        """Drain the sorting buffer into segments, sorted by the policy's
        user sort key (MDC sorts by carried ``up2``; Section 5.3)."""
        buffer = self.buffer
        if buffer is None or len(buffer) == 0:
            return
        failpoint("store.flush.pre_drain", buffered=len(buffer))
        pids = buffer.drain()
        obs = self.obs
        if obs is not None:
            obs.on_flush(len(pids))
        self._resolve_first_writes(pids)
        keys = self.policy.user_sort_key(pids)
        if keys is not None:
            pids = [pid for _, pid in sorted(zip(keys, pids))]
        policy = self.policy
        arr = np.asarray(pids, dtype=np.int64)
        routes = policy.route_user_batch(arr)
        if routes is None:
            for pid in pids:
                self._emit(pid, policy.route_user(pid), is_gc=False)
            return
        routes = np.ascontiguousarray(routes, dtype=np.int64)
        for start, stop in _stream_runs(routes):
            self._emit_run(arr[start:stop], int(routes[start]), is_gc=False)

    def set_oracle_frequencies(self, freqs: Sequence[float]) -> None:
        """Install exact per-page update frequencies for the ``-opt``
        policy variants (the paper's "exact page update frequency").

        Must be called before any page covered by ``freqs`` is written,
        so segment ``freq_sum`` accounting stays consistent; to change a
        frequency mid-run use :meth:`set_page_frequency`.
        """
        pages = self.pages
        pages.ensure(len(freqs) - 1)
        pages.oracle_freq[: len(freqs)] = np.asarray(freqs, dtype=np.float64)
        pages.oracle_active = True

    def set_page_frequency(self, page_id: int, freq: float) -> None:
        """Change one page's oracle frequency mid-run.

        Supports *dynamic* oracles — the paper's closing observation
        that "knowledge of workload may make it possible to better
        predict update frequency changes" (Section 8.2).  If the page is
        currently live in a segment, that segment's frequency sum is
        adjusted so MDC-opt's victim ranking stays consistent.
        """
        pages = self.pages
        if page_id >= len(pages.seg):
            pages.ensure(page_id)
        old = pages.oracle_freq[page_id]
        seg = pages.seg[page_id]
        if seg >= 0:
            self.segments.freq_sum[seg] += freq - old
            self.segments.epoch[seg] += 1
        pages.oracle_freq[page_id] = freq
        pages.oracle_active = True

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------

    @property
    def free_segment_count(self) -> int:
        """Segments currently in the free pool."""
        return len(self.free_list)

    def sealed_segments(self) -> np.ndarray:
        """Ids of all sealed (cleanable) segments, ascending.

        Cached between cleaning cycles: seals and cleans mark the cache
        dirty, so steady-state cycles skip the full state scan.  The
        returned array is the cache itself — treat it as read-only.
        """
        if self._sealed_dirty:
            self._sealed_cache = np.flatnonzero(self.segments.state == SEALED)
            self._sealed_dirty = False
        return self._sealed_cache

    def fill_factor_now(self) -> float:
        """Current fraction of device units holding live data (staged
        relocations count: their versions are current, just in cleaner
        memory rather than a segment)."""
        live = int(self.segments.live_units.sum())
        if self.buffer is not None:
            live += self.buffer.used_units
        if self._clean_cursor is not None:
            live += self.relocating_units()
        return live / self.config.device_units

    @property
    def clean_pending(self) -> int:
        """Staged pages the active incremental cycle has not processed
        yet (0 when no cycle is mid-flight)."""
        cur = self._clean_cursor
        return 0 if cur is None else cur.remaining

    @property
    def clean_cursor(self) -> Optional[CleanCursor]:
        """The active incremental cycle's cursor, or None."""
        return self._clean_cursor

    def relocating_units(self) -> int:
        """Units staged by the active incremental cycle whose current
        versions still await relocation (they live in cleaner memory,
        outside every segment and the sorting buffer)."""
        cur = self._clean_cursor
        if cur is None or cur.pos >= cur.pending.size:
            return 0
        rem = cur.pending[cur.pos :]
        still = self.pages.seg[rem] == IN_RELOCATION
        return int(cur.sizes[cur.pos :][still].sum())

    def relocating_dead_units(self) -> int:
        """Units of staged copies already obsoleted by foreground writes
        or trims but not yet skip-credited (their step hasn't reached
        them); these will fold into ``cleaned_emptiness_sum``."""
        cur = self._clean_cursor
        if cur is None or cur.pos >= cur.pending.size:
            return 0
        rem = cur.pending[cur.pos :]
        dead = self.pages.seg[rem] != IN_RELOCATION
        return int(cur.sizes[cur.pos :][dead].sum())

    def live_page_count(self) -> int:
        """Pages holding a current version anywhere (device or buffer)."""
        return int(np.count_nonzero(self.pages.seg != NEVER_WRITTEN))

    def wear_summary(self) -> dict:
        """Per-segment erase (reclaim) statistics — flash wear, in the
        SSD framing.  ``cv`` is the coefficient of variation: 0 means
        perfectly even wear."""
        counts = self.segments.erase_count
        n = counts.size
        total = int(counts.sum())
        mean = total / n
        if mean > 0.0:
            diffs = counts - mean
            cv = float(np.sqrt((diffs * diffs).mean()) / mean)
        else:
            cv = 0.0
        return {
            "total_erases": total,
            "mean": mean,
            "max": int(counts.max()),
            "min": int(counts.min()),
            "cv": cv,
        }

    # ------------------------------------------------------------------
    # Internals: invalidation, placement, sealing, allocation
    # ------------------------------------------------------------------

    def _invalidate(self, page_id: int, seg: int) -> None:
        """The current version of ``page_id`` in ``seg`` became obsolete."""
        segs = self.segments
        pages = self.pages
        segs.live_count[seg] -= 1
        segs.live_units[seg] -= pages.size[page_id]
        segs.freq_sum[seg] -= pages.oracle_freq[page_id]
        # Carry the page's update history forward (Section 5.2.2,
        # "Non-first Write"): prior up1 assumed midway between now and the
        # containing segment's up2, and it becomes the page's new up2.
        seg_up2 = segs.up2[seg]
        pages.carried_up2[page_id] = seg_up2 + 0.5 * (self.clock - seg_up2)
        # Advance the segment's last-two-updates pair (Section 4.3).
        segs.up2[seg] = segs.up1[seg]
        segs.up1[seg] = self.clock
        segs.epoch[seg] += 1

    def _resolve_first_writes(self, pids: Sequence[int]) -> None:
        """Give never-before-written pages a "coldish" up2: the oldest up2
        in the batch being processed (Section 5.2.2, "First Write")."""
        carried = self.pages.carried_up2
        arr = np.asarray(pids, dtype=np.int64)
        vals = carried[arr]
        nan = np.isnan(vals)
        known = vals[~nan]
        cold = float(known.min()) if known.size else self._cold_up2
        self._cold_up2 = cold
        if nan.any():
            carried[arr[nan]] = cold

    def _emit(self, page_id: int, stream: int, is_gc: bool) -> None:
        """Append ``page_id`` to the open segment of ``stream``, sealing
        and re-allocating as needed.

        Sealing removes the stream's map entry *before* any cleaning can
        run: cleaning relocates pages through this same method and (for
        policies whose GC shares streams with user writes) may re-open
        the very stream we are emitting to, so the open segment is
        re-fetched after the cleaning opportunity instead of being
        allocated eagerly — otherwise the recursion's segment would be
        orphaned in the OPEN state.
        """
        segs = self.segments
        pages = self.pages
        size = int(pages.size[page_id])
        seg = self.open_segments.get(stream)
        if seg is not None and segs.used_units[seg] + size > segs.capacity:
            self._seal(seg)
            del self.open_segments[stream]
            seg = None
        if seg is None:
            if not is_gc and not self._cleaning:
                self._clean_until_replenished()
                # Cleaning may have re-opened this very stream (GC can
                # share streams with user writes); re-fetch.
                seg = self.open_segments.get(stream)
                if seg is not None and segs.used_units[seg] + size > segs.capacity:
                    self._seal(seg)
                    del self.open_segments[stream]
                    seg = None
            if seg is None:
                seg = self._allocate()
                self.open_segments[stream] = seg
                segs.stream[seg] = stream
                self.policy.on_segment_open(seg, stream)
        slot = segs.append_slot(seg, page_id, size)
        pages.seg[page_id] = seg
        pages.slot[page_id] = slot
        segs.live_count[seg] += 1
        segs.live_units[seg] += size
        segs.used_units[seg] += size
        segs.up2_sum[seg] += pages.carried_up2[page_id]
        segs.freq_sum[seg] += pages.oracle_freq[page_id]
        if is_gc:
            self.stats.gc_writes += 1
        else:
            self.stats.user_device_writes += 1

    # ------------------------------------------------------------------
    # Internals: the vectorized run engine
    # ------------------------------------------------------------------

    def _invalidate_run(
        self,
        run: np.ndarray,
        old_seg: np.ndarray,
        old_size: np.ndarray,
        clocks: np.ndarray,
        subtract_freq: bool,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Vectorized :meth:`_invalidate` for a run of writes.

        Writes of the run that hit the same segment are grouped; within
        a group the scalar path's rolling ``(up1, up2)`` advance means
        write ``k`` (0-based) carries the midpoint against the segment's
        original ``up2`` (k=0), original ``up1`` (k=1), or the clock of
        the write two places earlier (k>=2) — computed here with a
        shift-by-two inside each group.  A page id may occur more than
        once (the direct path's in-run rewrites) — the per-page table
        scatter happens in run position order so the last occurrence
        wins, exactly as the scalar sequence would leave it.

        Returns ``(on_dev, carried)``: the on-device mask and the
        per-position carried values of the on-device subset (``None``
        when nothing was on the device).

        ``subtract_freq`` skips the ``freq_sum`` subtraction so the
        direct path can interleave it with the emission's addition (the
        scalar order alternates subtract/add per page on possibly the
        same segment, and float addition does not commute).
        """
        segs = self.segments
        pages = self.pages
        on_dev = old_seg >= 0
        if on_dev.all():
            # Steady state: every page already lives on the device.
            iseg = old_seg
            iclk = clocks
            inv_pids = run
            inv_sizes = old_size
        elif not on_dev.any():
            return on_dev, None
        else:
            ip = np.flatnonzero(on_dev)
            iseg = old_seg[ip]
            iclk = clocks[ip]
            inv_pids = run[ip]
            inv_sizes = old_size[ip]
        if iseg.size == 1 or np.bincount(iseg).max() == 1:
            # Every write hits a different segment (the common case when
            # runs are short relative to the device): every group is a
            # singleton, so the rolling (up1, up2) advance is one
            # elementwise step and the scatters need no conflict
            # resolution.
            sclk = iclk.astype(np.float64)
            base = segs.up2[iseg]
            carried = base + 0.5 * (sclk - base)
            pages.carried_up2[inv_pids] = carried
            segs.up2[iseg] = segs.up1[iseg]
            segs.up1[iseg] = sclk
            segs.live_count[iseg] -= 1
            segs.live_units[iseg] -= inv_sizes
            if subtract_freq:
                segs.freq_sum[iseg] = segs.freq_sum[iseg] + (
                    -pages.oracle_freq[inv_pids]
                )
            segs.epoch[iseg] += 1
            return on_dev, carried
        order = np.argsort(iseg, kind="stable")
        sseg = iseg[order]
        sclk = iclk[order].astype(np.float64)
        m = sseg.size
        newgrp = np.empty(m, dtype=bool)
        newgrp[0] = True
        newgrp[1:] = sseg[1:] != sseg[:-1]
        gidx = np.arange(m)
        gstart = np.maximum.accumulate(np.where(newgrp, gidx, 0))
        rank = gidx - gstart
        base = np.empty(m, dtype=np.float64)
        first = rank == 0
        base[first] = segs.up2[sseg[first]]
        second = rank == 1
        if second.any():
            base[second] = segs.up1[sseg[second]]
        later = rank >= 2
        if later.any():
            base[later] = sclk[gidx[later] - 2]
        carried = np.empty(m, dtype=np.float64)
        carried[order] = base + 0.5 * (sclk - base)
        pages.carried_up2[inv_pids] = carried
        ends = np.flatnonzero(np.append(newgrp[1:], True))
        group_segs = sseg[ends]
        orig_up1 = segs.up1[group_segs]
        segs.up1[group_segs] = sclk[ends]
        single = rank[ends] == 0
        prev_clk = sclk[np.maximum(ends - 1, 0)]
        segs.up2[group_segs] = np.where(single, orig_up1, prev_clk)
        np.subtract.at(segs.live_count, iseg, 1)
        np.subtract.at(segs.live_units, iseg, inv_sizes)
        if subtract_freq:
            np.add.at(segs.freq_sum, iseg, -pages.oracle_freq[inv_pids])
        np.add.at(segs.epoch, iseg, 1)
        return on_dev, carried

    def _write_run_direct(
        self,
        run: np.ndarray,
        run_sizes: Optional[np.ndarray],
        run_routes: np.ndarray,
        uniform_routes: bool,
        prev_rel: np.ndarray,
    ) -> int:
        """Place as many of ``run`` as fit the open segment of the run's
        first stream; returns the number of writes consumed (0 when the
        next write needs a seal, an allocation, or a different stream's
        state to advance first).

        ``prev_rel`` maps each position to the previous occurrence of
        its page id, relative to the run start (negative: none inside
        the run).  A repeated id invalidates the slot its previous
        occurrence just filled — the open segment itself — so in-run
        rewrites stay on the vectorized path and merely leave garbage
        behind in the open segment, as the scalar sequence would."""
        segs = self.segments
        pages = self.pages
        stream = int(run_routes[0])
        seg = self.open_segments.get(stream)
        if seg is None:
            return 0
        k = run.size
        if not uniform_routes:
            same = run_routes == stream
            if not same.all():
                k = int(np.argmin(same))
        fit = int(segs.capacity - segs.used_units[seg])
        if run_sizes is None:
            k = min(k, fit)
            if k == 0:
                return 0
            run = run[:k]
            sz = np.ones(k, dtype=np.int64)
        else:
            cum = np.cumsum(run_sizes[:k])
            k = int(np.searchsorted(cum, fit, side="right"))
            if k == 0:
                return 0
            run = run[:k]
            sz = run_sizes[:k]

        clock0 = self.clock
        clocks = clock0 + 1 + np.arange(k, dtype=np.int64)
        self.clock = clock0 + k
        self.stats.user_writes += k

        old_seg = pages.seg[run]
        old_size = pages.size[run]
        dup = prev_rel[:k] >= 0
        if dup.any():
            # In-run rewrite: the page's current version is the one this
            # very run emitted at its previous occurrence.
            old_seg[dup] = seg
            old_size[dup] = sz[prev_rel[:k][dup]]
        # Per-position carried values must be gathered before the
        # invalidation scatters new ones (a later rewrite of the same
        # page must not leak its value into an earlier emission).
        carried = pages.carried_up2[run]
        # freq_sum subtraction deferred: it interleaves with the
        # emission's addition below to match the scalar order.
        on_dev, inv_carried = self._invalidate_run(
            run, old_seg, old_size, clocks, subtract_freq=False
        )
        if inv_carried is not None:
            if inv_carried.size == k:
                carried = inv_carried
            else:
                carried[on_dev] = inv_carried
        nan = np.isnan(carried)
        if nan.any():
            carried[nan] = self._cold_up2
        pages.carried_up2[run] = carried

        pages.size[run] = sz
        slot0 = int(segs.slot_count[seg])
        segs.slot_page[seg, slot0 : slot0 + k] = run
        segs.slot_size[seg, slot0 : slot0 + k] = sz
        segs.slot_count[seg] = slot0 + k
        pages.seg[run] = seg
        pages.slot[run] = slot0 + np.arange(k)
        total = int(sz.sum())
        segs.live_count[seg] += k
        segs.live_units[seg] += total
        segs.used_units[seg] += total
        segs.up2_sum[seg] = _fold_add(segs.up2_sum[seg], carried)
        if pages.oracle_active:
            # Scalar order per page: subtract from the old segment, add
            # to the new one.  Replayed as one in-order scatter stream.
            freqs = pages.oracle_freq[run]
            idx = np.empty(2 * k, dtype=np.int64)
            val = np.empty(2 * k, dtype=np.float64)
            idx[0::2] = np.where(on_dev, old_seg, 0)
            idx[1::2] = seg
            val[0::2] = -freqs
            val[1::2] = freqs
            keep = np.ones(2 * k, dtype=bool)
            keep[0::2] = on_dev
            np.add.at(segs.freq_sum, idx[keep], val[keep])
        self.stats.user_device_writes += k
        pages.last_write[run] = clocks
        return k

    def _write_run_buffered(
        self, run: np.ndarray, run_sizes: Optional[np.ndarray]
    ) -> int:
        """Absorb as many of ``run`` as the sorting buffer takes without
        flushing; returns the number of writes consumed (0 when the next
        write must flush first)."""
        buffer = self.buffer
        pages = self.pages
        k0 = run.size
        old_seg = pages.seg[run]
        old_size = pages.size[run]
        in_buf = old_seg == IN_BUFFER
        sz = (
            np.ones(k0, dtype=np.int64)
            if run_sizes is None
            else run_sizes
        )
        # A rewrite of a buffered page replaces in place (net size delta,
        # no capacity check — mirroring SortBuffer.replace); a new page
        # must fit or the run ends at it (the scalar path flushes there).
        delta = np.where(in_buf, sz - old_size, sz)
        used_before = buffer.used_units + np.concatenate(
            ([0], np.cumsum(delta)[:-1])
        )
        viol = np.flatnonzero(
            (~in_buf) & (used_before + sz > buffer.capacity_units)
        )
        k = int(viol[0]) if viol.size else k0
        if k == 0:
            return 0
        if k < k0:
            run = run[:k]
            old_seg = old_seg[:k]
            old_size = old_size[:k]
            in_buf = in_buf[:k]
            sz = sz[:k]
            delta = delta[:k]

        clock0 = self.clock
        clocks = clock0 + 1 + np.arange(k, dtype=np.int64)
        self.clock = clock0 + k
        self.stats.user_writes += k

        self._invalidate_run(
            run, old_seg, old_size, clocks,
            subtract_freq=pages.oracle_active,
        )
        if in_buf.any():
            # Midpoint rule for rewrites of still-buffered pages.
            bp = np.flatnonzero(in_buf)
            carried = pages.carried_up2[run[bp]]
            known = ~np.isnan(carried)
            if known.any():
                sel = bp[known]
                carried = carried[known]
                pages.carried_up2[run[sel]] = carried + 0.5 * (
                    clocks[sel].astype(np.float64) - carried
                )

        # dict.update keeps existing keys in place and appends new ones
        # in order — exactly SortBuffer.replace / SortBuffer.add.
        buffer._sizes.update(zip(run.tolist(), sz.tolist()))
        buffer.used_units += int(delta.sum())
        pages.seg[run] = IN_BUFFER
        pages.size[run] = sz
        pages.last_write[run] = clocks
        return k

    def _emit_run(self, pids: np.ndarray, stream: int, is_gc: bool) -> None:
        """Emit pages (sizes and carried estimates already final in the
        page table) to ``stream``, vectorizing the fitting prefixes and
        delegating seal / allocate / clean boundaries to :meth:`_emit`.

        Sizes are gathered once up front: the pages being emitted are
        not touched by the seal/allocate boundaries in between, so the
        prefix sums stay valid for the whole run.
        """
        n = pids.size
        if n == 0:
            return
        segs = self.segments
        sizes = self.pages.size[pids]
        cum = np.empty(n + 1, dtype=np.int64)
        cum[0] = 0
        np.cumsum(sizes, out=cum[1:])
        i = 0
        while i < n:
            seg = self.open_segments.get(stream)
            if seg is not None:
                fit = segs.capacity - segs.used_units[seg]
                k = int(np.searchsorted(cum, cum[i] + fit, side="right")) - 1 - i
                if k > 0:
                    self._append_run(seg, pids[i : i + k], sizes[i : i + k], is_gc)
                    i += k
                    continue
                if is_gc:
                    # GC never cleans recursively, so the boundary is a
                    # plain seal + re-allocate — stay on the array path.
                    self._seal(seg)
                    del self.open_segments[stream]
                    seg = None
            if is_gc and seg is None:
                seg = self._allocate()
                self.open_segments[stream] = seg
                segs.stream[seg] = stream
                self.policy.on_segment_open(seg, stream)
                continue
            self._emit(int(pids[i]), stream, is_gc)
            i += 1

    def _append_run(
        self, seg: int, pids: np.ndarray, sizes: np.ndarray, is_gc: bool
    ) -> None:
        """Pure-append emission of a fitting run into an open segment."""
        segs = self.segments
        pages = self.pages
        k = pids.size
        slot0 = int(segs.slot_count[seg])
        segs.slot_page[seg, slot0 : slot0 + k] = pids
        segs.slot_size[seg, slot0 : slot0 + k] = sizes
        segs.slot_count[seg] = slot0 + k
        pages.seg[pids] = seg
        pages.slot[pids] = slot0 + np.arange(k)
        total = int(sizes.sum())
        segs.live_count[seg] += k
        segs.live_units[seg] += total
        segs.used_units[seg] += total
        segs.up2_sum[seg] = _fold_add(
            segs.up2_sum[seg], pages.carried_up2[pids]
        )
        if pages.oracle_active:
            segs.freq_sum[seg] = _fold_add(
                segs.freq_sum[seg], pages.oracle_freq[pids]
            )
        if is_gc:
            self.stats.gc_writes += k
        else:
            self.stats.user_device_writes += k

    def _seal(self, seg: int) -> None:
        """Close a full segment: fix its seal time and initialize its
        update-history pair from the pages it received (Section 5.2.2,
        "Garbage Collection Writes")."""
        segs = self.segments
        segs.state[seg] = SEALED
        segs.seal_time[seg] = self.clock
        n_written = int(segs.slot_count[seg])
        up2 = segs.up2_sum[seg] / n_written
        # The clock only moves forward; an averaged estimate can still
        # exceed "now" only through float noise — clamp defensively.
        up2 = min(up2, float(self.clock))
        segs.up2[seg] = up2
        # up1 assumed midway between up2 and now, matching the paper's
        # midpoint assumption for unobserved last-update times.
        segs.up1[seg] = up2 + 0.5 * (self.clock - up2)
        segs.epoch[seg] += 1
        self._sealed_dirty = True
        obs = self.obs
        if obs is not None:
            obs.on_seal(seg)

    def _clean_until_replenished(self) -> None:
        """Run cleaning cycles until the free pool recovers to the
        trigger.

        A single cycle nets only the victims' empty fraction, which for
        small batches (multi-log cleans one segment at a time) can be
        less than one segment, so the loop is required.  Cycles that
        reclaim no space at all are bounded so a degenerate policy fails
        fast instead of looping forever.
        """
        trigger = max(self.config.clean_trigger, self.policy.min_free_target())
        obs = self.obs
        gc_before = self.stats.gc_writes if obs is not None else 0
        tracer = obs.tracer if obs is not None else None
        span = (
            tracer.start("store.write_stall", clock=self.clock)
            if tracer is not None
            else None
        )
        try:
            if self._clean_cursor is not None:
                # Correctness backstop: a foreground allocation must never
                # overtake a mid-flight incremental cycle — the segments the
                # cycle freed at clean_begin are the headroom its own GC
                # emission relies on.  Drain it fully before cleaning more.
                self.clean_step(None)
            stalled = 0
            while len(self.free_list) < trigger:
                reclaimed_units = self.clean()
                if reclaimed_units == 0:
                    stalled += 1
                    if stalled > 2:
                        raise OutOfSpaceError(
                            "cleaning is not reclaiming space (policy=%s, free=%d)"
                            % (getattr(self.policy, "name", "?"), len(self.free_list))
                        )
                else:
                    stalled = 0
        finally:
            if span is not None:
                tracer.finish(span, pages=int(self.stats.gc_writes - gc_before))
        if obs is not None:
            stall = self.stats.gc_writes - gc_before
            if stall:
                # Everything relocated inside this call happened inline
                # in a foreground write — the stall the incremental
                # cleaner exists to bound.
                obs.on_write_stall(stall)

    def _allocate(self) -> int:
        """Pop a free segment and mark it open."""
        if not self.free_list:
            raise OutOfSpaceError(
                "no free segments (fill factor too high or policy reclaimed nothing)"
            )
        seg = self.free_list.popleft()
        self.segments.state[seg] = OPEN
        return seg

    # ------------------------------------------------------------------
    # Cleaning
    # ------------------------------------------------------------------

    def clean(self, n_victims: Optional[int] = None) -> int:
        """Run one full cleaning cycle; returns the units of space
        reclaimed (the victims' total available space).

        Victims are chosen by the policy; their live pages are staged,
        the victims freed, and the pages relocated through the policy's
        GC placement (which sorts / routes them by update frequency for
        the separating policies).  Implemented as :meth:`clean_begin`
        plus one unbounded :meth:`clean_step`, so the batch and
        incremental paths share every line of the cycle.  A leftover
        incremental cycle is drained first — the batch entry point
        never overlaps two cycles.
        """
        if self._clean_cursor is not None:
            self.clean_step(None)
        cursor = self.clean_begin(n_victims)
        self.clean_step(None)
        return cursor.reclaimed_units

    def clean_begin(self, n_victims: Optional[int] = None) -> CleanCursor:
        """Start a cleaning cycle and pin every decision it will make.

        Selects and validates the victims, records the cycle's
        statistics, stages the victims' live pages (marking them
        ``IN_RELOCATION``), computes the policy's GC placement order,
        and frees the victims — but relocates nothing.  The returned
        :class:`CleanCursor` (also held by the store) is driven by
        :meth:`clean_step`; ``clean_begin`` followed by one unbounded
        step is byte-identical to the historical batch ``clean()``.

        Raises :class:`StoreError` if a cycle is already mid-flight
        (drain it with ``clean_step(None)`` first) and
        :class:`OutOfSpaceError` if there is nothing to clean.
        """
        if self._clean_cursor is not None:
            raise StoreError(
                "an incremental cleaning cycle is already active "
                "(%d pages pending)" % self._clean_cursor.remaining
            )
        segs = self.segments
        pages = self.pages
        obs_t = self.obs
        tracer = obs_t.tracer if obs_t is not None else None
        span = (
            tracer.start("store.clean_begin", clock=self.clock)
            if tracer is not None
            else None
        )
        self._cleaning = True
        try:
            candidates = self.sealed_segments()
            if candidates.size == 0:
                raise OutOfSpaceError("nothing to clean: no sealed segments")
            victims = self.policy.select_victims(candidates, n_victims)
            if not victims:
                raise OutOfSpaceError("policy selected no victims")
            stats = self.stats
            v_arr = np.asarray(victims, dtype=np.int64)
            not_sealed = segs.state[v_arr] != SEALED
            if not_sealed.any():
                victim = int(v_arr[np.argmax(not_sealed)])
                raise OutOfSpaceError(
                    "policy selected non-sealed victim %d (%s)"
                    % (victim, segs.state_name(victim))
                )
            obs = self.obs
            if obs is not None:
                # The decision record needs the victims' ranking columns,
                # which segs.reset() below wipes — capture them now.
                obs.on_victims(candidates, victims)
            stats.segments_cleaned += len(victims)
            avail = segs.capacity - segs.live_units[v_arr]
            stats.cleaned_emptiness_sum = _fold_add(
                stats.cleaned_emptiness_sum, avail / float(segs.capacity)
            )
            reclaimed_units = int(avail.sum())
            # Liveness of every victim's slots, resolved in one scatter
            # (victims in selection order, slots in slot order — the
            # relocation order the scalar path produces).
            slot_pids, seg_rep, local_slot = segs.gather_slots(v_arr)
            live_mask = (pages.seg[slot_pids] == seg_rep) & (
                pages.slot[slot_pids] == local_slot
            )
            moved_arr = slot_pids[live_mask]
            src_arr = seg_rep[live_mask]
            # GC'd pages carry their source segment's up2
            # (Section 5.2.2, "Garbage Collection Writes").
            if moved_arr.size:
                pages.carried_up2[moved_arr] = segs.up2[src_arr]
            failpoint(
                "store.clean.pre_relocate",
                victims=victims,
                moved=moved_arr.tolist(),
            )
            # The placement order is pinned here, against the policy
            # state of this instant — preemption points between the
            # coming steps cannot change it.
            batch = self.policy.place_gc_batch(moved_arr, src_arr)
            if batch is not None:
                p_arr, s_arr = batch
            else:
                placements = list(
                    self.policy.place_gc(moved_arr.tolist(), src_arr.tolist())
                )
                count = len(placements)
                p_arr = np.fromiter(
                    (p for p, _ in placements), dtype=np.int64, count=count
                )
                s_arr = np.fromiter(
                    (s for _, s in placements), dtype=np.int64, count=count
                )
            for victim in victims:
                segs.reset(victim)
                self.free_list.append(victim)
            self._sealed_dirty = True
            sizes = pages.size[p_arr].copy()
            if p_arr.size:
                pages.seg[p_arr] = IN_RELOCATION
            cursor = CleanCursor(
                victims=list(victims),
                pending=p_arr,
                streams=s_arr,
                sizes=sizes,
                reclaimed_units=reclaimed_units,
                emptiness=avail / float(segs.capacity),
            )
            self._clean_cursor = cursor
            if span is not None:
                span.attrs["victims"] = len(victims)
                span.attrs["staged_pages"] = int(p_arr.size)
            return cursor
        finally:
            self._cleaning = False
            if span is not None:
                tracer.finish(span)

    def clean_step(self, max_pages: Optional[int] = None) -> int:
        """Relocate up to ``max_pages`` staged pages of the active cycle
        (all of them when None); returns the pages actually re-emitted.

        Completing the last position closes the cycle — ``clean_cycles``
        and the ``on_clean`` hook fire exactly as the batch path's would.
        Staged pages whose current version moved on (a foreground write
        or trim between steps) are skipped, and their space is credited
        to ``cleaned_emptiness_sum``: the copy became garbage before its
        move, so counting it as reclaimed-empty keeps the exact
        Equation 2 identity ``gc_writes == B * (segments_cleaned -
        cleaned_emptiness_sum)`` intact.  Returns 0 when no cycle is
        active.
        """
        cur = self._clean_cursor
        if cur is None:
            return 0
        if cur.pos >= cur.pending.size:
            # Nothing was staged (all-empty victims): close immediately.
            self._finish_clean(cur)
            return 0
        budget = cur.remaining if max_pages is None else int(max_pages)
        if budget <= 0:
            return 0
        pages = self.pages
        segs = self.segments
        n = cur.pending.size
        relocated = 0
        skipped_before = cur.skipped
        obs_t = self.obs
        tracer = obs_t.tracer if obs_t is not None else None
        span = (
            tracer.start("store.clean_step", clock=self.clock, budget=int(budget))
            if tracer is not None
            else None
        )
        self._cleaning = True
        try:
            failpoint(
                "store.clean.step",
                pos=cur.pos,
                remaining=cur.remaining,
                budget=budget,
            )
            while cur.pos < n and relocated < budget:
                start = cur.pos
                if cur.streams is None:
                    stream = GC_STREAM
                    stop = n
                else:
                    stream = int(cur.streams[start])
                    later = np.flatnonzero(cur.streams[start:] != stream)
                    stop = start + int(later[0]) if later.size else n
                stop = min(stop, start + (budget - relocated))
                chunk = cur.pending[start:stop]
                still = pages.seg[chunk] == IN_RELOCATION
                if still.all():
                    live_chunk = chunk
                else:
                    live_chunk = chunk[still]
                    dead_sizes = cur.sizes[start:stop][~still]
                    self.stats.cleaned_emptiness_sum = _fold_add(
                        self.stats.cleaned_emptiness_sum,
                        dead_sizes / float(segs.capacity),
                    )
                    cur.skipped += int(dead_sizes.size)
                if live_chunk.size:
                    self._emit_run(live_chunk, stream, is_gc=True)
                    relocated += int(live_chunk.size)
                cur.pos = stop
            cur.relocated += relocated
        finally:
            self._cleaning = False
            if span is not None:
                tracer.finish(
                    span,
                    relocated=int(relocated),
                    skipped=int(cur.skipped - skipped_before),
                    remaining=int(cur.remaining),
                )
        obs = self.obs
        if obs is not None:
            obs.on_clean_step(
                relocated, cur.skipped - skipped_before, cur.remaining
            )
        if cur.pos >= n:
            self._finish_clean(cur)
        return relocated

    def _finish_clean(self, cur: CleanCursor) -> None:
        """Close a drained cycle: counters, hook, cursor teardown."""
        self.stats.clean_cycles += 1
        self._clean_cursor = None
        obs = self.obs
        if obs is not None:
            obs.on_clean(
                cur.victims,
                cur.relocated,
                cur.reclaimed_units,
                cur.emptiness,
            )

    # ------------------------------------------------------------------
    # Invariant checking (used by tests; cheap enough for debugging runs)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify internal consistency; raises AssertionError on breakage.

        Checked invariants:
        * every segment is in exactly one of free list / open map / sealed;
        * per-segment live counts and unit accounting match slot liveness;
        * every live page-table entry points at a matching slot;
        * total live units never exceed device capacity.
        """
        segs = self.segments
        pages = self.pages
        n = len(segs)
        free = set(self.free_list)
        assert len(free) == len(self.free_list), "duplicate segments in free list"
        open_now = set(self.open_segments.values())
        for stream, seg in self.open_segments.items():
            assert segs.stream[seg] == stream, (
                "open segment %d tagged with stream %d, mapped to %d"
                % (seg, segs.stream[seg], stream)
            )
        for s in range(n):
            st = segs.state[s]
            if s in free:
                assert st == FREE, segs.describe(s)
            elif s in open_now:
                assert st == OPEN, segs.describe(s)
            else:
                assert st == SEALED or st == FREE, segs.describe(s)
            live = pages.live_pages_of(segs, s)
            assert segs.live_count[s] == len(live), segs.describe(s)
            live_units = sum(pages.size[p] for p in live)
            assert segs.live_units[s] == live_units, segs.describe(s)
            freq_sum = sum(pages.oracle_freq[p] for p in live)
            assert abs(segs.freq_sum[s] - freq_sum) < 1e-6 * max(1.0, freq_sum), (
                segs.describe(s)
            )
            assert segs.used_units[s] <= segs.capacity, segs.describe(s)
            assert segs.live_units[s] <= segs.used_units[s], segs.describe(s)
        total_live = int(segs.live_units.sum())
        assert total_live <= self.config.device_units
        cur = self._clean_cursor
        staged = (
            set() if cur is None else set(cur.pending[cur.pos :].tolist())
        )
        for pid in range(len(pages.seg)):
            seg = pages.seg[pid]
            if seg >= 0:
                slot = pages.slot[pid]
                assert (
                    slot < segs.slot_count[seg]
                    and segs.slot_page[seg, slot] == pid
                ), "page %d points at slot that holds another page" % pid
            elif seg == IN_BUFFER:
                assert self.buffer is not None and pid in self.buffer
            elif seg == IN_RELOCATION:
                assert pid in staged, (
                    "page %d staged IN_RELOCATION but not pending in the "
                    "active cycle" % pid
                )

    def __repr__(self) -> str:
        return (
            "<LogStructuredStore segs=%d free=%d clock=%d user_writes=%d "
            "gc_writes=%d policy=%s>"
            % (
                self.config.n_segments,
                len(self.free_list),
                self.clock,
                self.stats.user_writes,
                self.stats.gc_writes,
                getattr(self.policy, "name", type(self.policy).__name__),
            )
        )


def segments_needed(units: int, segment_units: int) -> int:
    """Number of whole segments needed to hold ``units`` of data."""
    return int(math.ceil(units / segment_units))
