"""Write-amplification and cleaning statistics.

The paper's performance metric (Section 6.1.2) is write amplification::

    Wamp = (pages moved by cleaning) / (pages written by the user)

Equation 2 expresses the same quantity analytically as ``(1 - E) / E``
where ``E`` is the average segment emptiness at cleaning time.  The store
counts both numerator and denominator, and also the emptiness of every
cleaned segment so that simulated ``E`` can be compared against the
analysis (Table 1).

Counters are cumulative; measurement windows are taken as snapshot deltas
so that warm-up (initial load and convergence) can be excluded, mirroring
the paper's procedure of writing many multiples of the device size until
write amplification stabilizes.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class StatsSnapshot:
    """An immutable copy of the cumulative counters at one instant."""

    user_writes: int
    user_device_writes: int
    gc_writes: int
    trims: int
    segments_cleaned: int
    cleaned_emptiness_sum: float
    clean_cycles: int

    def as_dict(self) -> dict:
        """JSON-ready counter dump (obs exporters embed this)."""
        return dataclasses.asdict(self)

    def delta(self, earlier: "StatsSnapshot") -> "WindowStats":
        """Statistics over the interval from ``earlier`` to this snapshot."""
        return WindowStats(
            user_writes=self.user_writes - earlier.user_writes,
            user_device_writes=(
                self.user_device_writes - earlier.user_device_writes
            ),
            gc_writes=self.gc_writes - earlier.gc_writes,
            trims=self.trims - earlier.trims,
            segments_cleaned=self.segments_cleaned - earlier.segments_cleaned,
            cleaned_emptiness_sum=(
                self.cleaned_emptiness_sum - earlier.cleaned_emptiness_sum
            ),
            clean_cycles=self.clean_cycles - earlier.clean_cycles,
        )


@dataclasses.dataclass(frozen=True)
class WindowStats:
    """Derived metrics over a measurement window."""

    user_writes: int
    user_device_writes: int
    gc_writes: int
    trims: int
    segments_cleaned: int
    cleaned_emptiness_sum: float
    clean_cycles: int

    def as_dict(self) -> dict:
        """The window's counters plus its derived metrics, JSON-ready
        (obs exporters embed this)."""
        out = dataclasses.asdict(self)
        out["write_amplification"] = self.write_amplification
        out["device_write_amplification"] = self.device_write_amplification
        out["mean_cleaned_emptiness"] = self.mean_cleaned_emptiness
        return out

    @property
    def write_amplification(self) -> float:
        """``Wamp`` against logical user writes — the paper's metric
        (Section 6.1.2): cleaning writes per write the user performs.

        Note that a sorting buffer absorbs rewrites of still-buffered
        pages; part of Figure 4's improvement is hot traffic captured in
        RAM, which this metric credits (as the paper's does).
        """
        if self.user_writes == 0:
            return 0.0
        return self.gc_writes / self.user_writes

    @property
    def device_write_amplification(self) -> float:
        """``Wamp`` against user writes that actually reached a segment.

        This is the denominator for which the segment-flow identity
        ``Wamp = (1 - E) / E`` holds exactly; it isolates the cleaning
        policy's contribution from buffer absorption.  Without a buffer
        the two metrics coincide.
        """
        if self.user_device_writes == 0:
            return 0.0
        return self.gc_writes / self.user_device_writes

    @property
    def mean_cleaned_emptiness(self) -> float:
        """Average ``E`` of segments at the moment they were cleaned."""
        if self.segments_cleaned == 0:
            return 0.0
        return self.cleaned_emptiness_sum / self.segments_cleaned

    @property
    def cost_per_segment(self) -> float:
        """Equation 1's ``Cost_seg = 2 / E`` evaluated at the measured E."""
        e = self.mean_cleaned_emptiness
        return float("inf") if e == 0.0 else 2.0 / e


class StoreStats:
    """Mutable cumulative counters owned by a store instance."""

    __slots__ = (
        "user_writes",
        "user_device_writes",
        "gc_writes",
        "trims",
        "segments_cleaned",
        "cleaned_emptiness_sum",
        "clean_cycles",
    )

    def __init__(self) -> None:
        self.user_writes = 0
        self.user_device_writes = 0
        self.gc_writes = 0
        self.trims = 0
        self.segments_cleaned = 0
        self.cleaned_emptiness_sum = 0.0
        self.clean_cycles = 0

    def snapshot(self) -> StatsSnapshot:
        """Immutable copy of the current counters."""
        return StatsSnapshot(
            user_writes=self.user_writes,
            user_device_writes=self.user_device_writes,
            gc_writes=self.gc_writes,
            trims=self.trims,
            segments_cleaned=self.segments_cleaned,
            cleaned_emptiness_sum=self.cleaned_emptiness_sum,
            clean_cycles=self.clean_cycles,
        )

    def window_since(self, earlier: StatsSnapshot) -> WindowStats:
        """Metrics over the interval since ``earlier``."""
        return self.snapshot().delta(earlier)

    @property
    def write_amplification(self) -> float:
        """Cumulative ``Wamp`` since the store was created (includes the
        initial load; prefer windowed measurement for converged values)."""
        if self.user_writes == 0:
            return 0.0
        return self.gc_writes / self.user_writes
