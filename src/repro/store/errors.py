"""Exceptions raised by the log-structured store simulator."""


class StoreError(Exception):
    """Base class for all simulator errors."""


class ConfigError(StoreError):
    """A :class:`~repro.store.config.StoreConfig` is internally inconsistent.

    Raised eagerly at construction time so that a mis-parameterized
    experiment fails before any simulation work is done.
    """


class OutOfSpaceError(StoreError):
    """The store cannot reclaim enough space to continue writing.

    This indicates either a fill factor of (nearly) 1.0 or a cleaning
    policy that selected victims with no reclaimable space.
    """


class PageSizeError(StoreError):
    """A page write carries an invalid size (non-positive or larger than
    a whole segment)."""
