"""Preemptible incremental cleaning with a latency SLO.

The paper's cleaner reclaims space in whole victim batches, so a
foreground write that trips the free-pool trigger stalls behind an
entire cycle — every live page of every victim relocated inline.  The
:class:`IncrementalCleaner` converts that single blocking operation into
a scheduler: cleaning advances in *steps* that relocate at most
``pages_per_step`` pages (optionally also bounded by a wall-clock
deadline), so foreground work interleaves with reclamation at page
granularity instead of cycle granularity.

The engine is a thin scheduling layer: all cycle state lives in the
store's :class:`~repro.store.log_store.CleanCursor` (victims, staged
pages, and placement order pinned at ``clean_begin``), which is what
makes preemption safe — a step can never change *what* a cycle does,
only *when* its pages move.  The store keeps its own reactive inline
cleaning as a correctness backstop: if steps don't keep up and a write
exhausts the free pool, the write cleans inline exactly as before (and
the stall shows up in the ``write_stall_pages`` histogram).

Two knobs shape the SLO:

* ``pages_per_step`` — the per-step relocation budget, the bound on how
  long any single step (and thus any foreground interleave gap) runs;
* ``free_target`` — the proactive free-pool depth.  Cleaning is *needed*
  whenever the pool is below it; keeping it above the store's reactive
  trigger is what keeps inline stalls out of the foreground path.

Deadline-bounded steps (``deadline_s``) re-check the clock between
bounded slices, not inside them, so a deadline never splits a slice —
byte-determinism is preserved for any fixed sequence of step *budgets*,
and replaying a recorded budget sequence reproduces the store exactly.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.store.errors import OutOfSpaceError

#: Pages relocated per unbounded-deadline slice while a deadline is
#: active: small enough to give ~per-millisecond clock checks, large
#: enough to amortize the step dispatch.
_DEADLINE_SLICE = 8


class IncrementalCleaner:
    """Budgeted, preemptible driver for a store's cleaning cycles.

    Args:
        store: The :class:`~repro.store.LogStructuredStore` to clean.
        pages_per_step: Default relocation budget per :meth:`step` call.
        free_target: Free-segment depth to proactively maintain; default
            is the store's reactive trigger plus two segments of
            headroom (so foreground writes essentially never clean
            inline while steps keep pace).
        clean_batch: Victims per cycle, passed to ``clean_begin``
            (None = the policy's own batch size).
    """

    def __init__(
        self,
        store,
        pages_per_step: int = 32,
        free_target: Optional[int] = None,
        clean_batch: Optional[int] = None,
    ) -> None:
        if pages_per_step < 1:
            raise ValueError(
                "pages_per_step must be positive; got %d" % pages_per_step
            )
        self.store = store
        self.pages_per_step = int(pages_per_step)
        if free_target is None:
            trigger = max(
                store.config.clean_trigger, store.policy.min_free_target()
            )
            free_target = trigger + 2
        self.free_target = int(free_target)
        self.clean_batch = clean_batch
        #: Cumulative pages relocated through this engine.
        self.pages_relocated = 0
        #: Cumulative step() calls that did any work.
        self.steps_run = 0
        #: Cycles this engine began.
        self.cycles_started = 0
        #: step() calls cut short by their deadline.
        self.deadline_preemptions = 0

    # -- state ---------------------------------------------------------

    @property
    def pending(self) -> int:
        """Staged pages of the active cycle not yet relocated."""
        return self.store.clean_pending

    def needs_cleaning(self) -> bool:
        """True when a step would do useful work: a cycle is mid-flight,
        or the free pool is below ``free_target`` with something sealed
        to clean."""
        store = self.store
        if store.clean_cursor is not None:
            return True
        if store.free_segment_count >= self.free_target:
            return False
        return store.sealed_segments().size > 0

    def behind(self) -> bool:
        """True when the pool has fallen below the *reactive* trigger —
        the next allocating write will clean inline.  The governance
        layer treats this as urgent: such a shard gets a step even when
        deferral-under-load would otherwise skip it."""
        store = self.store
        trigger = max(
            store.config.clean_trigger, store.policy.min_free_target()
        )
        return store.free_segment_count < trigger

    # -- driving -------------------------------------------------------

    def step(
        self,
        max_pages: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> int:
        """Advance cleaning by one bounded step; returns pages relocated.

        Relocates at most ``max_pages`` (default ``pages_per_step``),
        beginning a new cycle when none is active and the pool is below
        ``free_target``, and stopping early once the deadline (when
        given) expires or the target is reached with no cycle mid-flight.
        A no-op returning 0 when no cleaning is needed.
        """
        budget = self.pages_per_step if max_pages is None else int(max_pages)
        if budget <= 0:
            return 0
        store = self.store
        start = time.monotonic() if deadline_s is not None else 0.0
        done = 0
        while budget > 0:
            if store.clean_cursor is None:
                if not self.needs_cleaning():
                    break
                free_before = store.free_segment_count
                try:
                    store.clean_begin(self.clean_batch)
                except OutOfSpaceError:
                    break  # nothing cleanable right now
                self.cycles_started += 1
                if (
                    store.clean_pending == 0
                    and store.free_segment_count <= free_before
                ):
                    # All-empty victims should have grown the pool; if
                    # they didn't, a degenerate policy is spinning —
                    # stop rather than loop (the cursor self-closes on
                    # its first step).
                    store.clean_step(None)
                    break
            if deadline_s is not None:
                slice_budget = min(budget, _DEADLINE_SLICE)
            else:
                slice_budget = budget
            moved = store.clean_step(slice_budget)
            done += moved
            budget -= moved
            if moved < slice_budget and store.clean_cursor is not None:
                # The cycle neither drained nor filled the slice: the
                # remaining staged copies were skipped as obsolete.
                continue
            if (
                deadline_s is not None
                and time.monotonic() - start >= deadline_s
            ):
                self.deadline_preemptions += 1
                break
        if done:
            self.pages_relocated += done
            self.steps_run += 1
        return done

    def drain(self) -> int:
        """Finish the active cycle unconditionally (no new cycle is
        begun); returns pages relocated."""
        moved = self.store.clean_step(None)
        if moved:
            self.pages_relocated += moved
        return moved

    def idle_tick(self, max_pages: Optional[int] = None) -> int:
        """Opportunistic cleaning during idle time: one :meth:`step`
        (the name marks call sites driven by idleness, not demand)."""
        return self.step(max_pages)

    def stats(self) -> Dict[str, int]:
        """Engine counters, JSON-ready."""
        return {
            "pages_relocated": self.pages_relocated,
            "steps_run": self.steps_run,
            "cycles_started": self.cycles_started,
            "deadline_preemptions": self.deadline_preemptions,
            "pending": self.pending,
        }

    def __repr__(self) -> str:
        return (
            "<IncrementalCleaner pages_per_step=%d free_target=%d "
            "pending=%d relocated=%d>"
            % (
                self.pages_per_step,
                self.free_target,
                self.pending,
                self.pages_relocated,
            )
        )
