"""Store introspection reports (debugging / analysis aids).

The checkerboard of Figure 1 — segments part current, part obsolete —
is the whole cleaning problem; these helpers make it visible: emptiness
histograms over sealed segments, a one-screen store summary, and the
per-segment dump the tests print on failures.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.store.log_store import LogStructuredStore
from repro.store.segments import SEALED
from repro.store.stats import WindowStats


def emptiness_histogram(
    store: LogStructuredStore, buckets: int = 10
) -> List[int]:
    """Counts of sealed segments per emptiness band ``[i/b, (i+1)/b)``.

    The shape tells a policy story at a glance: a uniform store shows a
    single hump; a well-separated skewed store is bimodal (nearly-full
    cold segments plus rapidly-emptying hot ones).
    """
    if buckets < 1:
        raise ValueError("buckets must be positive")
    segs = store.segments
    sealed = segs.state == SEALED
    if not sealed.any():
        return [0] * buckets
    e = (segs.capacity - segs.live_units[sealed]) / segs.capacity
    # Emptiness is in [0, 1]; truncation matches int(e * buckets), with
    # the e == 1.0 edge folded into the last band.
    idx = np.minimum(buckets - 1, (e * buckets).astype(np.int64))
    return np.bincount(idx, minlength=buckets).tolist()


def checkerboard(store: LogStructuredStore, segment: int) -> str:
    """Figure 1 in ASCII: ``#`` = current page, ``.`` = obsolete slot."""
    segs = store.segments
    pages = store.pages
    cells = []
    for slot, pid in enumerate(segs.slot_list(segment)):
        cells.append("#" if pages.is_live_slot(segment, slot, pid) else ".")
    return "".join(cells)


def describe(
    store: LogStructuredStore, window: Optional[WindowStats] = None
) -> str:
    """One-screen summary: occupancy, cleaning stats, wear, histogram.

    Write amplification is reported twice: the cumulative figure (which
    includes the initial load and so understates the converged value on
    short runs) and a windowed one.  The window comes from the
    ``window`` argument, else from the attached observer's measurement
    interval; with neither it is marked unavailable.
    """
    cfg = store.config
    stats = store.stats
    wear = store.wear_summary()
    hist = emptiness_histogram(store)
    peak = max(hist) or 1
    hist_rows = "\n".join(
        "  E in [%.1f, %.1f): %-4d %s"
        % (i / 10, (i + 1) / 10, n, "#" * round(20 * n / peak))
        for i, n in enumerate(hist)
    )
    if window is None and store.obs is not None:
        window = store.obs.window()
    if window is not None:
        windowed = "%.3f windowed (over %d user writes)" % (
            window.write_amplification,
            window.user_writes,
        )
    else:
        windowed = "n/a windowed (no measurement window)"
    return (
        "store: %d segments x %d units (fill target %.2f, now %.3f)\n"
        "policy: %s\n"
        "writes: %d user (%d to device), %d GC, %d trims\n"
        "Wamp: %.3f cumulative (includes load), %s\n"
        "cleaning: %d cycles, %d segments, mean E when cleaned %.3f\n"
        "wear: %d erases (min %d / mean %.1f / max %d, cv %.2f)\n"
        "sealed-segment emptiness histogram:\n%s"
        % (
            cfg.n_segments,
            cfg.segment_units,
            cfg.fill_factor,
            store.fill_factor_now(),
            getattr(store.policy, "describe", lambda: store.policy.name)(),
            stats.user_writes,
            stats.user_device_writes,
            stats.gc_writes,
            stats.trims,
            stats.write_amplification,
            windowed,
            stats.clean_cycles,
            stats.segments_cleaned,
            (stats.cleaned_emptiness_sum / stats.segments_cleaned)
            if stats.segments_cleaned else 0.0,
            wear["total_erases"],
            wear["min"],
            wear["mean"],
            wear["max"],
            wear["cv"],
            hist_rows,
        )
    )


def temperature_report(store: LogStructuredStore) -> Dict[str, float]:
    """How well the store has separated hot from cold: the coefficient
    of variation of per-segment update rates (``freq_sum`` when an
    oracle is installed, live-count-normalized up2 recency otherwise).

    Higher is better — perfect mixing drives it toward zero.
    """
    segs = store.segments
    mask = (segs.state == SEALED) & (segs.live_count > 0)
    n = int(np.count_nonzero(mask))
    if n == 0:
        return {"segments": 0, "cv": 0.0}
    freq = segs.freq_sum[mask]
    count = segs.live_count[mask]
    # No oracle signal -> the recency fallback 2/(now - up2), the same
    # two-interval shape MDC's estimator uses.
    age = np.maximum(1.0, store.clock - segs.up2[mask])
    rates = np.where(freq > 0, freq / count, 2.0 / age)
    mean = float(rates.mean())
    var = float(((rates - mean) ** 2).mean())
    return {
        "segments": n,
        "cv": (var ** 0.5 / mean) if mean else 0.0,
    }
