"""Store introspection reports (debugging / analysis aids).

The checkerboard of Figure 1 — segments part current, part obsolete —
is the whole cleaning problem; these helpers make it visible: emptiness
histograms over sealed segments, a one-screen store summary, and the
per-segment dump the tests print on failures.
"""

from __future__ import annotations

from typing import Dict, List

from repro.store.log_store import LogStructuredStore
from repro.store.segments import SEALED


def emptiness_histogram(
    store: LogStructuredStore, buckets: int = 10
) -> List[int]:
    """Counts of sealed segments per emptiness band ``[i/b, (i+1)/b)``.

    The shape tells a policy story at a glance: a uniform store shows a
    single hump; a well-separated skewed store is bimodal (nearly-full
    cold segments plus rapidly-emptying hot ones).
    """
    if buckets < 1:
        raise ValueError("buckets must be positive")
    counts = [0] * buckets
    segs = store.segments
    for s in range(len(segs)):
        if segs.state[s] != SEALED:
            continue
        e = segs.emptiness(s)
        idx = min(buckets - 1, int(e * buckets))
        counts[idx] += 1
    return counts


def checkerboard(store: LogStructuredStore, segment: int) -> str:
    """Figure 1 in ASCII: ``#`` = current page, ``.`` = obsolete slot."""
    segs = store.segments
    pages = store.pages
    cells = []
    for slot, pid in enumerate(segs.slots[segment]):
        cells.append("#" if pages.is_live_slot(segment, slot, pid) else ".")
    return "".join(cells)


def describe(store: LogStructuredStore) -> str:
    """One-screen summary: occupancy, cleaning stats, wear, histogram."""
    cfg = store.config
    stats = store.stats
    wear = store.wear_summary()
    hist = emptiness_histogram(store)
    peak = max(hist) or 1
    hist_rows = "\n".join(
        "  E in [%.1f, %.1f): %-4d %s"
        % (i / 10, (i + 1) / 10, n, "#" * round(20 * n / peak))
        for i, n in enumerate(hist)
    )
    return (
        "store: %d segments x %d units (fill target %.2f, now %.3f)\n"
        "policy: %s\n"
        "writes: %d user (%d to device), %d GC, %d trims -> Wamp %.3f\n"
        "cleaning: %d cycles, %d segments, mean E when cleaned %.3f\n"
        "wear: %d erases (min %d / mean %.1f / max %d, cv %.2f)\n"
        "sealed-segment emptiness histogram:\n%s"
        % (
            cfg.n_segments,
            cfg.segment_units,
            cfg.fill_factor,
            store.fill_factor_now(),
            getattr(store.policy, "describe", lambda: store.policy.name)(),
            stats.user_writes,
            stats.user_device_writes,
            stats.gc_writes,
            stats.trims,
            stats.write_amplification,
            stats.clean_cycles,
            stats.segments_cleaned,
            (stats.cleaned_emptiness_sum / stats.segments_cleaned)
            if stats.segments_cleaned else 0.0,
            wear["total_erases"],
            wear["min"],
            wear["mean"],
            wear["max"],
            wear["cv"],
            hist_rows,
        )
    )


def temperature_report(store: LogStructuredStore) -> Dict[str, float]:
    """How well the store has separated hot from cold: the coefficient
    of variation of per-segment update rates (``freq_sum`` when an
    oracle is installed, live-count-normalized up2 recency otherwise).

    Higher is better — perfect mixing drives it toward zero.
    """
    segs = store.segments
    rates = []
    for s in range(len(segs)):
        if segs.state[s] != SEALED or segs.live_count[s] == 0:
            continue
        if segs.freq_sum[s] > 0:
            rates.append(segs.freq_sum[s] / segs.live_count[s])
        else:
            age = max(1.0, store.clock - segs.up2[s])
            rates.append(2.0 / age)
    if not rates:
        return {"segments": 0, "cv": 0.0}
    mean = sum(rates) / len(rates)
    var = sum((r - mean) ** 2 for r in rates) / len(rates)
    return {
        "segments": len(rates),
        "cv": (var ** 0.5 / mean) if mean else 0.0,
    }
