"""Log-structured store simulator (the paper's experimental substrate).

Public surface:

* :class:`StoreConfig` — device geometry and cleaning parameters.
* :class:`LogStructuredStore` — the simulator itself.
* :class:`StoreStats` / :class:`WindowStats` — write-amplification
  accounting.
* :data:`GC_STREAM` — the stream id policies use for relocated pages.
"""

from repro.store.buffer import SortBuffer
from repro.store.cleaner import IncrementalCleaner
from repro.store.config import StoreConfig, paper_config
from repro.store.errors import ConfigError, OutOfSpaceError, PageSizeError, StoreError
from repro.store.log_store import (
    CleanCursor,
    GC_STREAM,
    LogStructuredStore,
    segments_needed,
)
from repro.store.pagetable import (
    IN_BUFFER,
    IN_FLIGHT,
    IN_RELOCATION,
    NEVER_WRITTEN,
    PageTable,
)
from repro.store.persistence import PersistenceError, load_store, save_store
from repro.store.reporting import (
    checkerboard,
    describe,
    emptiness_histogram,
    temperature_report,
)
from repro.store.segments import FREE, OPEN, SEALED, SegmentTable
from repro.store.stats import StatsSnapshot, StoreStats, WindowStats

__all__ = [
    "CleanCursor",
    "ConfigError",
    "FREE",
    "GC_STREAM",
    "IN_BUFFER",
    "IN_FLIGHT",
    "IN_RELOCATION",
    "IncrementalCleaner",
    "LogStructuredStore",
    "NEVER_WRITTEN",
    "OPEN",
    "OutOfSpaceError",
    "PageSizeError",
    "PageTable",
    "PersistenceError",
    "load_store",
    "save_store",
    "SEALED",
    "SegmentTable",
    "SortBuffer",
    "StatsSnapshot",
    "StoreConfig",
    "StoreError",
    "StoreStats",
    "WindowStats",
    "checkerboard",
    "describe",
    "emptiness_histogram",
    "temperature_report",
    "paper_config",
    "segments_needed",
]
