"""Checkpoint / restore of a running store.

Long experiments (full-scale Table 1 rows take hours in pure Python) can
be checkpointed to a single ``.npz`` file and resumed later — or the
converged state of one run can seed many policy-comparison runs.

What is saved: config, clock, statistics, the complete page and segment
tables, the free pool, open segments, the sorting buffer's contents,
and the policy's ``state_dict()`` (policies whose state lives outside
the store tables — multi-log's classes — override the state hooks; the
MDC family needs nothing, its bookkeeping *is* the tables).

Restoring requires constructing the same policy type; the file records
the policy name so mismatches fail loudly rather than corrupt silently.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Union

import numpy as np

from repro.store.config import StoreConfig
from repro.store.errors import StoreError
from repro.store.log_store import LogStructuredStore

FORMAT_VERSION = 1


class PersistenceError(StoreError):
    """Checkpoint file is malformed or does not match the target."""


def save_store(store: LogStructuredStore, path: Union[str, pathlib.Path]) -> None:
    """Write a complete checkpoint of ``store`` to ``path`` (.npz)."""
    store.flush()  # simplest sound treatment of in-flight buffer pages
    segs = store.segments
    pages = store.pages
    slot_lengths = np.array([len(s) for s in segs.slots], dtype=np.int64)
    flat_slots = np.array(
        [pid for slots in segs.slots for pid in slots], dtype=np.int64
    )
    flat_sizes = np.array(
        [size for sizes in segs.slot_sizes for size in sizes], dtype=np.int64
    )
    stats = store.stats
    meta = {
        "version": FORMAT_VERSION,
        "config": dataclasses.asdict(store.config),
        "policy": store.policy.name,
        "clock": store.clock,
        "cold_up2": store._cold_up2,
        "stats": {
            "user_writes": stats.user_writes,
            "user_device_writes": stats.user_device_writes,
            "gc_writes": stats.gc_writes,
            "trims": stats.trims,
            "segments_cleaned": stats.segments_cleaned,
            "cleaned_emptiness_sum": stats.cleaned_emptiness_sum,
            "clean_cycles": stats.clean_cycles,
        },
        "open_segments": {str(k): v for k, v in store.open_segments.items()},
        "policy_state": store.policy.state_dict(),
    }
    np.savez_compressed(
        str(path),
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        page_seg=np.array(pages.seg, dtype=np.int64),
        page_slot=np.array(pages.slot, dtype=np.int64),
        page_carried_up2=np.array(pages.carried_up2, dtype=np.float64),
        page_last_write=np.array(pages.last_write, dtype=np.int64),
        page_size=np.array(pages.size, dtype=np.int64),
        page_oracle=np.array(pages.oracle_freq, dtype=np.float64),
        seg_state=np.array(segs.state, dtype=np.int64),
        seg_live_count=np.array(segs.live_count, dtype=np.int64),
        seg_live_units=np.array(segs.live_units, dtype=np.int64),
        seg_used_units=np.array(segs.used_units, dtype=np.int64),
        seg_seal_time=np.array(segs.seal_time, dtype=np.int64),
        seg_up1=np.array(segs.up1, dtype=np.float64),
        seg_up2=np.array(segs.up2, dtype=np.float64),
        seg_up2_sum=np.array(segs.up2_sum, dtype=np.float64),
        seg_freq_sum=np.array(segs.freq_sum, dtype=np.float64),
        seg_erase_count=np.array(segs.erase_count, dtype=np.int64),
        slot_lengths=slot_lengths,
        flat_slots=flat_slots,
        flat_sizes=flat_sizes,
        free_list=np.array(list(store.free_list), dtype=np.int64),
    )


def load_store(path: Union[str, pathlib.Path], policy) -> LogStructuredStore:
    """Rebuild a store from a checkpoint, attaching ``policy``.

    The policy must be the same registered kind that was saved.
    """
    data = np.load(str(path))
    meta = json.loads(bytes(data["meta"]).decode())
    if meta.get("version") != FORMAT_VERSION:
        raise PersistenceError(
            "unsupported checkpoint version %r" % (meta.get("version"),)
        )
    if policy.name != meta["policy"]:
        raise PersistenceError(
            "checkpoint was taken with policy %r, got %r"
            % (meta["policy"], policy.name)
        )
    config = StoreConfig(**meta["config"])
    store = LogStructuredStore(config, policy)
    store.clock = int(meta["clock"])
    store._cold_up2 = float(meta["cold_up2"])
    for field, value in meta["stats"].items():
        setattr(store.stats, field, value)

    pages = store.pages
    pages.ensure(len(data["page_seg"]) - 1)
    pages.seg[:] = data["page_seg"].tolist()
    pages.slot[:] = data["page_slot"].tolist()
    pages.carried_up2[:] = data["page_carried_up2"].tolist()
    pages.last_write[:] = data["page_last_write"].tolist()
    pages.size[:] = data["page_size"].tolist()
    pages.oracle_freq[:] = data["page_oracle"].tolist()

    segs = store.segments
    segs.state[:] = data["seg_state"].tolist()
    segs.live_count[:] = data["seg_live_count"].tolist()
    segs.live_units[:] = data["seg_live_units"].tolist()
    segs.used_units[:] = data["seg_used_units"].tolist()
    segs.seal_time[:] = data["seg_seal_time"].tolist()
    segs.up1[:] = data["seg_up1"].tolist()
    segs.up2[:] = data["seg_up2"].tolist()
    segs.up2_sum[:] = data["seg_up2_sum"].tolist()
    segs.freq_sum[:] = data["seg_freq_sum"].tolist()
    segs.erase_count[:] = data["seg_erase_count"].tolist()
    flat_slots = data["flat_slots"].tolist()
    flat_sizes = data["flat_sizes"].tolist()
    offset = 0
    for seg_id, length in enumerate(data["slot_lengths"].tolist()):
        segs.slots[seg_id] = flat_slots[offset:offset + length]
        segs.slot_sizes[seg_id] = flat_sizes[offset:offset + length]
        offset += length

    store.free_list.clear()
    store.free_list.extend(int(s) for s in data["free_list"].tolist())
    store.open_segments.clear()
    for stream, seg in meta["open_segments"].items():
        store.open_segments[int(stream)] = int(seg)
        policy.on_segment_open(int(seg), int(stream))
    policy.load_state_dict(meta["policy_state"])
    store.check_invariants()
    return store
