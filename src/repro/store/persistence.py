"""Checkpoint / restore of a running store.

Long experiments (full-scale Table 1 rows take hours in pure Python) can
be checkpointed to a single ``.npz`` file and resumed later — or the
converged state of one run can seed many policy-comparison runs.

What is saved: config, clock, statistics, the complete page and segment
tables, the free pool, open segments, the sorting buffer's contents,
and the policy's ``state_dict()`` (policies whose state lives outside
the store tables — multi-log's classes — override the state hooks; the
MDC family needs nothing, its bookkeeping *is* the tables).

Restoring requires constructing the same policy type; the file records
the policy name so mismatches fail loudly rather than corrupt silently.

Durability contract:

* **Atomic save** — the checkpoint is written to a temporary file in
  the destination directory, flushed and fsynced, then renamed over the
  target.  A crash at any point (see the ``persistence.save.*``
  failpoints) leaves either the previous checkpoint or the new one,
  never a torn hybrid.
* **Corruption detection** — every load recomputes a SHA-256 over the
  restored payload and compares it against the digest stored at save
  time; a truncated, bit-flipped, or otherwise damaged file raises
  :class:`PersistenceError` instead of restoring silently-corrupt
  state.  (The zip/zlib CRCs inside ``.npz`` catch most damage already;
  the payload digest closes the gap for container-metadata damage.)
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Dict, Union

import numpy as np

from repro.store.config import StoreConfig
from repro.store.errors import StoreError
from repro.store.log_store import LogStructuredStore
from repro.testkit.failpoints import failpoint

FORMAT_VERSION = 2


class PersistenceError(StoreError):
    """Checkpoint file is malformed or does not match the target."""


def _payload_digest(meta_bytes: bytes, arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over the canonical checkpoint payload (meta + arrays in
    key order), the integrity seal verified on every load."""
    h = hashlib.sha256()
    h.update(meta_bytes)
    for key in sorted(arrays):
        h.update(key.encode())
        h.update(arrays[key].tobytes())
    return h.hexdigest()


def save_store(store: LogStructuredStore, path: Union[str, pathlib.Path]) -> None:
    """Write a complete checkpoint of ``store`` to ``path`` (.npz).

    The write is atomic: a crash mid-save never destroys an existing
    checkpoint at ``path``.
    """
    store.flush()  # simplest sound treatment of in-flight buffer pages
    # Same treatment for a mid-flight incremental cleaning cycle: drain
    # it so no page is checkpointed as IN_RELOCATION — staged copies
    # live only in cleaner memory and would be orphaned by a reload.
    store.clean_step(None)
    segs = store.segments
    pages = store.pages
    # The dense (n_segments, capacity) slot matrices serialize as the
    # historical ragged-flat form, keeping the npz keys (and the payload
    # digest inputs) independent of the in-memory layout.
    slot_lengths = segs.slot_count.copy()
    width = segs.slot_page.shape[1]
    occupied = np.arange(width) < slot_lengths[:, None]
    flat_slots = segs.slot_page[occupied]
    flat_sizes = segs.slot_size[occupied]
    stats = store.stats
    meta = {
        "version": FORMAT_VERSION,
        "config": dataclasses.asdict(store.config),
        "policy": store.policy.name,
        "clock": store.clock,
        "cold_up2": store._cold_up2,
        "stats": {
            "user_writes": stats.user_writes,
            "user_device_writes": stats.user_device_writes,
            "gc_writes": stats.gc_writes,
            "trims": stats.trims,
            "segments_cleaned": stats.segments_cleaned,
            "cleaned_emptiness_sum": stats.cleaned_emptiness_sum,
            "clean_cycles": stats.clean_cycles,
        },
        "open_segments": {str(k): v for k, v in store.open_segments.items()},
        "policy_state": store.policy.state_dict(),
    }
    meta_bytes = json.dumps(meta).encode()
    arrays = {
        "page_seg": np.array(pages.seg, dtype=np.int64),
        "page_slot": np.array(pages.slot, dtype=np.int64),
        "page_carried_up2": np.array(pages.carried_up2, dtype=np.float64),
        "page_last_write": np.array(pages.last_write, dtype=np.int64),
        "page_size": np.array(pages.size, dtype=np.int64),
        "page_oracle": np.array(pages.oracle_freq, dtype=np.float64),
        "seg_state": np.array(segs.state, dtype=np.int64),
        "seg_live_count": np.array(segs.live_count, dtype=np.int64),
        "seg_live_units": np.array(segs.live_units, dtype=np.int64),
        "seg_used_units": np.array(segs.used_units, dtype=np.int64),
        "seg_seal_time": np.array(segs.seal_time, dtype=np.int64),
        "seg_up1": np.array(segs.up1, dtype=np.float64),
        "seg_up2": np.array(segs.up2, dtype=np.float64),
        "seg_up2_sum": np.array(segs.up2_sum, dtype=np.float64),
        "seg_freq_sum": np.array(segs.freq_sum, dtype=np.float64),
        "seg_erase_count": np.array(segs.erase_count, dtype=np.int64),
        "slot_lengths": slot_lengths,
        "flat_slots": flat_slots,
        "flat_sizes": flat_sizes,
        "free_list": np.array(list(store.free_list), dtype=np.int64),
    }
    digest = _payload_digest(meta_bytes, arrays)

    path = pathlib.Path(path)
    tmp_path = path.with_name(path.name + ".tmp")
    failpoint("persistence.save.pre_write", path=path, tmp_path=tmp_path)
    try:
        with open(tmp_path, "wb") as fh:
            np.savez_compressed(
                fh,
                meta=np.frombuffer(meta_bytes, dtype=np.uint8),
                checksum=np.frombuffer(digest.encode(), dtype=np.uint8),
                **arrays,
            )
            fh.flush()
            os.fsync(fh.fileno())
        failpoint("persistence.save.pre_rename", path=path, tmp_path=tmp_path)
        os.replace(tmp_path, path)
    finally:
        # A crash between write and rename (injected or real) must not
        # litter; the temp file carries no durable promise.
        if tmp_path.exists():
            try:
                tmp_path.unlink()
            except OSError:
                pass
    failpoint("persistence.save.post_rename", path=path)


def load_store(path: Union[str, pathlib.Path], policy) -> LogStructuredStore:
    """Rebuild a store from a checkpoint, attaching ``policy``.

    The policy must be the same registered kind that was saved.  Any
    damage to the file — truncation, bit flips, a torn container —
    raises :class:`PersistenceError`.
    """
    try:
        data = np.load(str(path))
        meta_bytes = bytes(data["meta"])
        meta = json.loads(meta_bytes.decode())
    except PersistenceError:
        raise
    except Exception as exc:
        raise PersistenceError(
            "checkpoint %s is unreadable (truncated or corrupt): %s: %s"
            % (path, type(exc).__name__, exc)
        ) from exc
    if meta.get("version") != FORMAT_VERSION:
        raise PersistenceError(
            "unsupported checkpoint version %r" % (meta.get("version"),)
        )
    if policy.name != meta["policy"]:
        raise PersistenceError(
            "checkpoint was taken with policy %r, got %r"
            % (meta["policy"], policy.name)
        )

    try:
        arrays = {
            key: data[key]
            for key in data.files
            if key not in ("meta", "checksum")
        }
        stored_digest = bytes(data["checksum"]).decode()
    except Exception as exc:
        raise PersistenceError(
            "checkpoint %s payload is unreadable (truncated or corrupt): "
            "%s: %s" % (path, type(exc).__name__, exc)
        ) from exc
    if _payload_digest(meta_bytes, arrays) != stored_digest:
        raise PersistenceError(
            "checkpoint %s failed its integrity check (bit rot or partial "
            "write); refusing to restore" % (path,)
        )

    config = StoreConfig(**meta["config"])
    store = LogStructuredStore(config, policy)
    store.clock = int(meta["clock"])
    store._cold_up2 = float(meta["cold_up2"])
    for field, value in meta["stats"].items():
        setattr(store.stats, field, value)

    pages = store.pages
    pages.ensure(len(arrays["page_seg"]) - 1)
    pages.seg[:] = arrays["page_seg"].tolist()
    pages.slot[:] = arrays["page_slot"].tolist()
    pages.carried_up2[:] = arrays["page_carried_up2"].tolist()
    pages.last_write[:] = arrays["page_last_write"].tolist()
    pages.size[:] = arrays["page_size"].tolist()
    pages.oracle_freq[:] = arrays["page_oracle"].tolist()

    segs = store.segments
    segs.state[:] = arrays["seg_state"].tolist()
    segs.live_count[:] = arrays["seg_live_count"].tolist()
    segs.live_units[:] = arrays["seg_live_units"].tolist()
    segs.used_units[:] = arrays["seg_used_units"].tolist()
    segs.seal_time[:] = arrays["seg_seal_time"].tolist()
    segs.up1[:] = arrays["seg_up1"].tolist()
    segs.up2[:] = arrays["seg_up2"].tolist()
    segs.up2_sum[:] = arrays["seg_up2_sum"].tolist()
    segs.freq_sum[:] = arrays["seg_freq_sum"].tolist()
    segs.erase_count[:] = arrays["seg_erase_count"].tolist()
    flat_slots = arrays["flat_slots"]
    flat_sizes = arrays["flat_sizes"]
    offset = 0
    for seg_id, length in enumerate(arrays["slot_lengths"].tolist()):
        segs.set_slots(
            seg_id,
            flat_slots[offset:offset + length],
            flat_sizes[offset:offset + length],
        )
        offset += length

    store.free_list.clear()
    store.free_list.extend(int(s) for s in arrays["free_list"].tolist())
    store.open_segments.clear()
    for stream, seg in meta["open_segments"].items():
        store.open_segments[int(stream)] = int(seg)
        # The stream column is advisory bookkeeping (not checkpointed);
        # re-tag the open segments so the open-map invariant holds.
        segs.stream[int(seg)] = int(stream)
        policy.on_segment_open(int(seg), int(stream))
    policy.load_state_dict(meta["policy_state"])
    try:
        store.check_invariants()
    except AssertionError as exc:
        raise PersistenceError(
            "checkpoint %s restored an inconsistent store: %s" % (path, exc)
        ) from exc
    return store
