"""The user-write sorting buffer (paper Section 5.3 and Figure 4).

MDC separates data by update frequency by *sorting* pending page writes by
their ``up2`` estimate before packing them into segments, so consecutive
segments receive pages of similar hotness.  The buffer is RAM: it holds
page ids (the simulator never materializes contents) and does not consume
device segments.

A rewrite of a page already in the buffer replaces it in place — the
buffer always holds at most one (the latest) version of a page, so
buffered pages never create garbage in segments.
"""

from __future__ import annotations

from typing import Dict, List


class SortBuffer:
    """Accumulates user page writes until ``capacity_units`` worth arrive.

    The store drains the buffer (via its flush path) when an ``add`` would
    overflow; the buffer itself only tracks membership and occupancy.
    """

    __slots__ = ("capacity_units", "used_units", "_sizes")

    def __init__(self, capacity_units: int) -> None:
        if capacity_units < 1:
            raise ValueError("capacity_units must be positive")
        self.capacity_units = capacity_units
        self.used_units = 0
        #: page id -> size, in insertion order (dict preserves it).
        self._sizes: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._sizes)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._sizes

    def fits(self, size: int) -> bool:
        """Whether ``size`` more units fit without overflowing."""
        return self.used_units + size <= self.capacity_units

    def add(self, page_id: int, size: int) -> None:
        """Insert a page; caller must have checked :meth:`fits` (and the
        page must not already be buffered — rewrites use :meth:`replace`)."""
        self._sizes[page_id] = size
        self.used_units += size

    def replace(self, page_id: int, size: int) -> None:
        """A buffered page was rewritten; update its size in place."""
        old = self._sizes[page_id]
        self._sizes[page_id] = size
        self.used_units += size - old

    def remove(self, page_id: int) -> None:
        """Discard a buffered page (TRIM of a not-yet-persisted write)."""
        self.used_units -= self._sizes.pop(page_id)

    def drain(self) -> List[int]:
        """Remove and return all buffered page ids in insertion order."""
        pids = list(self._sizes)
        self._sizes.clear()
        self.used_units = 0
        return pids
