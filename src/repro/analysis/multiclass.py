"""Generalizing the paper's Section 3 analysis from two populations to k.

The gedanken setup extends naturally: partition the pages into ``k``
groups, give group ``i`` (holding ``Dist_i`` of the data, receiving
``U_i`` of the updates) a slack share ``g_i``, and each group behaves as
an independent uniform store with fill factor::

    F_i = F * Dist_i / ((1 - F) * g_i + F * Dist_i)

Setting the derivative of ``Σ U_i * 2/E_i`` to zero under ``Σ g_i = 1``
(with the paper's ``R_i``-constant simplification) gives the stationary
condition ``U_i * Dist_i / (R_i * g_i^2)`` equal across groups, i.e. ::

    g_i  ∝  sqrt(U_i * Dist_i / R_i)

which reduces to the paper's ``g_1/g_2 = sqrt(R_2/R_1)`` for the
``m:1-m`` family (where all ``U_i * Dist_i`` are equal).  A fixpoint
pass refines the ``R_i`` at the resulting ``F_i``.

The payoff: an analytic write-amplification lower bound for *any*
discrete update distribution — in particular Zipfian, by bucketing pages
into equal-population frequency classes — extending the paper's Figure 3
"opt" series to Figures 5b/5c.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.analysis.cost_model import emptiness_ratio, write_amplification
from repro.analysis.fixpoint import emptiness_fixpoint
from repro.analysis.hotcold import split_fill_factor


def _check_inputs(updates: Sequence[float], dists: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    updates = np.asarray(updates, dtype=float)
    dists = np.asarray(dists, dtype=float)
    if updates.shape != dists.shape or updates.ndim != 1 or updates.size < 1:
        raise ValueError("updates and dists must be equal-length 1-D sequences")
    for name, arr in (("updates", updates), ("dists", dists)):
        if np.any(arr <= 0):
            raise ValueError("%s must be strictly positive" % name)
        if abs(arr.sum() - 1.0) > 1e-9:
            raise ValueError("%s must sum to 1" % name)
    return updates, dists


def optimal_slack_shares(
    fill_factor: float,
    updates: Sequence[float],
    dists: Sequence[float],
    refine_rounds: int = 4,
) -> np.ndarray:
    """Cost-minimizing slack shares ``g_i`` for k separated populations.

    Starts from the constant-``R`` closed form ``g_i ∝ sqrt(U_i *
    Dist_i / R_i)`` with ``R_i = R(F)`` and refines ``R_i`` at the
    implied per-group fill factors for a few rounds (it converges fast
    because ``R`` varies slowly).
    """
    updates, dists = _check_inputs(updates, dists)
    k = updates.size
    if k == 1:
        return np.array([1.0])
    r = np.full(k, _ratio_at(fill_factor))
    shares = None
    for _ in range(refine_rounds):
        raw = np.sqrt(updates * dists / r)
        shares = raw / raw.sum()
        for i in range(k):
            f_i = split_fill_factor(fill_factor, dists[i], shares[i])
            r[i] = _ratio_at(f_i)
    return shares


def _ratio_at(fill: float) -> float:
    e = emptiness_fixpoint(fill)
    return emptiness_ratio(e, fill)


def separated_wamp(
    fill_factor: float,
    updates: Sequence[float],
    dists: Sequence[float],
    shares: Sequence[float] = None,
) -> float:
    """Update-weighted write amplification of k separated populations
    (``Σ U_i * (1 - E_i)/E_i``); optimal shares by default."""
    updates, dists = _check_inputs(updates, dists)
    if shares is None:
        shares = optimal_slack_shares(fill_factor, updates, dists)
    shares = np.asarray(shares, dtype=float)
    if shares.shape != updates.shape or np.any(shares <= 0):
        raise ValueError("shares must be positive and match the populations")
    if abs(shares.sum() - 1.0) > 1e-9:
        raise ValueError("shares must sum to 1")
    total = 0.0
    for u, d, g in zip(updates, dists, shares):
        e = emptiness_fixpoint(split_fill_factor(fill_factor, d, g))
        total += u * write_amplification(e)
    return total


def bucketize_frequencies(
    frequencies: Sequence[float], k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Group a per-page frequency distribution into (up to) ``k``
    buckets of roughly equal *update mass*, ordered cold to hot.

    Buckets group pages of *similar frequency* (what separation
    exploits): when the distribution has at most ``k`` distinct values —
    hot-cold has two — the natural populations are recovered exactly;
    otherwise pages are classed into log-spaced frequency bands (the
    same shape as multi-log's classes), so within-bucket frequency
    variation is bounded by a constant factor.

    Returns ``(updates, dists)`` for the buckets, cold to hot, suitable
    for :func:`optimal_slack_shares` / :func:`separated_wamp`.  Fewer
    than ``k`` buckets come back when bands are empty.
    """
    freqs = np.sort(np.asarray(frequencies, dtype=float))
    if freqs.size == 0:
        raise ValueError("frequencies is empty")
    if np.any(freqs < 0) or freqs.sum() <= 0:
        raise ValueError("frequencies must be non-negative and not all zero")
    if k < 1 or k > freqs.size:
        raise ValueError("k must be in [1, n_pages]")
    positive = freqs[freqs > 0]
    unique = np.unique(positive)
    if unique.size <= k:
        edges = np.append(unique, np.inf)
    else:
        # Log-spaced class boundaries over the positive frequency range.
        lo, hi = unique[0], unique[-1]
        edges = np.append(
            np.geomspace(lo, hi, num=k, endpoint=False)[1:], np.inf
        )
    # Zero-frequency pages join the coldest class: they are pure cold
    # data parked with the slowest population.
    counts = np.zeros(edges.size)
    masses = np.zeros(edges.size)
    idx = np.searchsorted(edges, freqs, side="left")
    np.add.at(counts, idx, 1)
    np.add.at(masses, idx, freqs)
    keep_any = counts > 0
    updates = masses[keep_any]
    dists = counts[keep_any]
    # Merge any zero-update buckets into their hotter neighbour so the
    # optimizer's positivity requirements hold (all-cold tails happen
    # with extremely skewed traces).
    keep = updates > 0
    if not keep.all():
        first = int(np.argmax(keep))
        dists[first] += dists[:first].sum()
        updates, dists = updates[first:], dists[first:]
    return updates / updates.sum(), dists / dists.sum()


def distribution_opt_wamp(
    frequencies: Sequence[float],
    fill_factor: float,
    k: int = 16,
) -> float:
    """Analytic write-amplification lower bound for an arbitrary page
    update distribution, by k-bucket separation.

    For the ``m:1-m`` family with ``k=2`` this reproduces Figure 3's
    "opt"; with a Zipfian ``frequencies`` vector it extends the bound to
    Figures 5b/5c.  More buckets can only lower the bound (finer
    separation), converging quickly in practice.
    """
    updates, dists = bucketize_frequencies(frequencies, k)
    return separated_wamp(fill_factor, updates, dists)
