"""The Maximality Lemma (paper Section 4.1 and Appendix A).

Given equal-sized sets of positive numbers ``X`` and ``Y``, the sum
``Σ x_i * y_i`` over a pairing is maximized when both are ordered the
same way (the rearrangement inequality).  This is what justifies MDC:
pair the largest cost *declines* with the largest *waiting times* — i.e.
clean the smallest-decline segments first.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def paired_sum(x: Sequence[float], y: Sequence[float]) -> float:
    """``Σ x_i * y_i`` for a given pairing."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError("X and Y must have equal size")
    return float(np.dot(x, y))


def max_paired_sum(x: Sequence[float], y: Sequence[float]) -> float:
    """The lemma's maximum: both sequences sorted the same way."""
    x = np.sort(np.asarray(x, dtype=float))
    y = np.sort(np.asarray(y, dtype=float))
    return float(np.dot(x, y))


def min_paired_sum(x: Sequence[float], y: Sequence[float]) -> float:
    """The corresponding minimum: opposite orders (useful as the lower
    bound in tests)."""
    x = np.sort(np.asarray(x, dtype=float))
    y = np.sort(np.asarray(y, dtype=float))[::-1]
    return float(np.dot(x, y))


def mdc_processing_cost(
    initial_costs: Sequence[float],
    declines: Sequence[float],
    interval: float = 1.0,
) -> float:
    """Total cost of processing items in the given order under the
    Section 4.1 linear-decline model.

    Item ``i`` (0-based position in the sequence) is processed at time
    ``i * interval`` with cost ``c_i(0) - decline_i * i * interval``.
    MDC's claim: ordering by ascending decline minimizes this.
    """
    costs = np.asarray(initial_costs, dtype=float)
    declines = np.asarray(declines, dtype=float)
    if costs.shape != declines.shape:
        raise ValueError("costs and declines must have equal size")
    if np.any(declines < 0):
        raise ValueError("declines must be non-negative")
    times = np.arange(len(costs), dtype=float) * interval
    return float(costs.sum() - np.dot(declines, times))


def mdc_order(declines: Sequence[float]) -> np.ndarray:
    """The cost-minimizing processing order: ascending decline."""
    return np.argsort(np.asarray(declines, dtype=float), kind="stable")
