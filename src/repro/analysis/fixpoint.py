"""Age-based cleaning under uniform updates: the fixpoint model
(Section 2.2, Equations 3-4, Table 1).

With age-based (circular) cleaning, a segment written now is cleaned
after every other physical segment has been filled once.  With ``P`` user
pages, fill factor ``F``, and ``N = P * E / F`` intervening writes, the
probability that a given page of the segment was overwritten is::

    E = 1 - ((P - 1) / P) ** N          (Equation 3)

whose large-``P`` limit is the transcendental fixpoint::

    E = 1 - exp(-E / F)                 (Equation 4)

``E = 0`` is always a (degenerate) solution; the physically meaningful
one is the unique positive root, which exists for every ``F < 1``.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

from repro.analysis import cost_model

#: The fill factors tabulated in the paper's Table 1.
TABLE1_FILL_FACTORS = (
    0.975, 0.95, 0.90, 0.85, 0.80, 0.75, 0.70, 0.65,
    0.60, 0.55, 0.50, 0.45, 0.40, 0.35, 0.30, 0.25, 0.20,
)


def emptiness_fixpoint(fill_factor: float, n_pages: Optional[int] = None,
                       tol: float = 1e-12) -> float:
    """Solve for the steady-state emptiness ``E`` at cleaning time.

    Args:
        fill_factor: ``F`` in (0, 1).
        n_pages: Use the finite-population Equation 3 with this ``P``;
            ``None`` (default) uses the ``P → ∞`` limit, Equation 4.
            The paper notes the two agree once ``P`` exceeds ~30.
        tol: Bisection interval width at which to stop.

    Returns:
        The unique positive root, in (0, 1).
    """
    if not 0.0 < fill_factor < 1.0:
        raise ValueError("fill_factor must be in (0, 1), got %r" % (fill_factor,))
    if n_pages is None:
        def residual(e: float) -> float:
            """Equation 4 rearranged to root form."""
            return e - 1.0 + math.exp(-e / fill_factor)
    else:
        if n_pages < 2:
            raise ValueError("n_pages must be at least 2")
        log_base = math.log((n_pages - 1) / n_pages)

        def residual(e: float) -> float:
            """Equation 3 rearranged to root form."""
            return e - 1.0 + math.exp(n_pages * e / fill_factor * log_base)

    # residual(0) == 0 (the degenerate root); residual is negative just
    # above it (slope 1 - 1/F < 0) and positive at 1, so bisect.
    lo, hi = 1e-9, 1.0
    if residual(lo) >= 0.0:
        raise ArithmeticError(
            "no positive emptiness root at F=%r (degenerate configuration)"
            % (fill_factor,)
        )
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if residual(mid) < 0.0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


@dataclasses.dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1 (analysis columns)."""

    fill_factor: float
    slack: float
    emptiness: float
    cost: float
    ratio: float
    wamp: float


def table1_row(fill_factor: float) -> Table1Row:
    """Compute one analysis row of Table 1 from Equation 4."""
    e = emptiness_fixpoint(fill_factor)
    return Table1Row(
        fill_factor=fill_factor,
        slack=1.0 - fill_factor,
        emptiness=e,
        cost=cost_model.cost_per_segment(e),
        ratio=cost_model.emptiness_ratio(e, fill_factor),
        wamp=cost_model.write_amplification(e),
    )


def table1(fill_factors: Sequence[float] = TABLE1_FILL_FACTORS) -> List[Table1Row]:
    """The full analysis side of Table 1."""
    return [table1_row(f) for f in fill_factors]
