"""Hot/cold separation analysis (paper Section 3, Table 2, and the
analytic "opt" series of Figure 3).

The gedanken setup: two page populations, each uniformly updated, managed
in completely separate spaces.  Population ``i`` holds ``Dist_i`` of the
data and receives ``U_i`` of the updates; the device slack ``1 - F`` is
divided between them by weights ``g_i`` (``g_1 + g_2 = 1``).  Each
population then behaves like an independent uniform store with fill
factor::

    F_i = F * Dist_i / ((1 - F) * g_i + F * Dist_i)

whose emptiness ``E_i`` comes from the Equation 4 fixpoint, so the total
update-weighted cost is ``Σ U_i * 2 / E_i`` and the total write
amplification is ``Σ U_i * (1 - E_i) / E_i``.

For the paper's ``m : 1-m`` family (``U_1 * Dist_1 = U_2 * Dist_2``) the
cost-minimizing split is ``g_1/g_2 = sqrt(R_2/R_1) ≈ 1`` — share the
slack (nearly) equally — and cost is flat around the optimum, which is
why the paper's Hot:60% / Hot:40% columns barely move.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from repro.analysis.cost_model import emptiness_ratio, write_amplification
from repro.analysis.fixpoint import emptiness_fixpoint

#: The skews tabulated in the paper's Table 2 / swept in Figure 3.
TABLE2_SKEWS = (90, 80, 70, 60, 50)


def split_fill_factor(fill_factor: float, dist: float, g: float) -> float:
    """``F_i`` for a population holding ``dist`` of the data and granted
    ``g`` of the slack space.

    ``dist = g = 1`` is the degenerate single-population case and
    returns ``fill_factor`` unchanged.
    """
    _check_fraction("fill_factor", fill_factor)
    if not 0.0 < dist <= 1.0:
        raise ValueError("dist must be in (0, 1], got %r" % (dist,))
    if not 0.0 < g <= 1.0:
        raise ValueError("slack share g must be in (0, 1], got %r" % (g,))
    return (fill_factor * dist) / ((1.0 - fill_factor) * g + fill_factor * dist)


def population_emptiness(fill_factor: float, dist: float, g: float) -> float:
    """Steady-state ``E_i`` of one separately-managed population."""
    return emptiness_fixpoint(split_fill_factor(fill_factor, dist, g))


def total_cost(
    fill_factor: float,
    updates: Sequence[float],
    dists: Sequence[float],
    slack_shares: Sequence[float],
) -> float:
    """Update-weighted cleaning cost ``Σ U_i * 2 / E_i`` for populations
    managed separately."""
    _check_partition("updates", updates)
    _check_partition("dists", dists)
    _check_partition("slack_shares", slack_shares)
    cost = 0.0
    for u, d, g in zip(updates, dists, slack_shares):
        e = population_emptiness(fill_factor, d, g)
        cost += u * 2.0 / e
    return cost


def total_wamp(
    fill_factor: float,
    updates: Sequence[float],
    dists: Sequence[float],
    slack_shares: Sequence[float],
) -> float:
    """Update-weighted write amplification ``Σ U_i * (1 - E_i) / E_i``.

    This is the "opt" series plotted in Figure 3.
    """
    _check_partition("updates", updates)
    _check_partition("dists", dists)
    _check_partition("slack_shares", slack_shares)
    wamp = 0.0
    for u, d, g in zip(updates, dists, slack_shares):
        e = population_emptiness(fill_factor, d, g)
        wamp += u * write_amplification(e)
    return wamp


def hotcold_parameters(m_percent: int) -> Tuple[Tuple[float, float], Tuple[float, float]]:
    """``(updates, dists)`` for the paper's ``m : 1-m`` skew: ``m`` % of
    updates hit ``100-m`` % of the data (hot population first)."""
    if not 50 <= m_percent <= 99:
        raise ValueError("m_percent must be in [50, 99], got %r" % (m_percent,))
    m = m_percent / 100.0
    return (m, 1.0 - m), (1.0 - m, m)


def optimal_slack_split(
    fill_factor: float,
    updates: Sequence[float],
    dists: Sequence[float],
    tol: float = 1e-6,
) -> float:
    """Numerically find the hot population's cost-minimizing slack share
    ``g_1`` by golden-section search (cost is unimodal in ``g_1``)."""
    invphi = (5 ** 0.5 - 1) / 2

    def cost(g1: float) -> float:
        """Total cost as a function of the hot population's share."""
        return total_cost(fill_factor, updates, dists, (g1, 1.0 - g1))

    lo, hi = 1e-4, 1.0 - 1e-4
    a = hi - invphi * (hi - lo)
    b = lo + invphi * (hi - lo)
    fa, fb = cost(a), cost(b)
    while hi - lo > tol:
        if fa < fb:
            hi, b, fb = b, a, fa
            a = hi - invphi * (hi - lo)
            fa = cost(a)
        else:
            lo, a, fa = a, b, fb
            b = lo + invphi * (hi - lo)
            fb = cost(b)
    return 0.5 * (lo + hi)


def analytic_split_ratio(
    fill_factor: float,
    updates: Sequence[float],
    dists: Sequence[float],
) -> float:
    """The closed-form first-order optimum of Section 3.2::

        g_1 / g_2 = sqrt((U_1 * Dist_1 * R_2) / (U_2 * Dist_2 * R_1))

    evaluated with ``R_i`` at the equal-split fill factors (the paper
    treats ``R_i`` as constants).  For ``m : 1-m`` skews the update-size
    products cancel and this reduces to ``sqrt(R_2 / R_1) ≈ 1``.
    """
    r = []
    for d in dists:
        f_i = split_fill_factor(fill_factor, d, 0.5)
        e_i = emptiness_fixpoint(f_i)
        r.append(emptiness_ratio(e_i, f_i))
    u1, u2 = updates
    d1, d2 = dists
    return ((u1 * d1 * r[1]) / (u2 * d2 * r[0])) ** 0.5


@dataclasses.dataclass(frozen=True)
class Table2Row:
    """One row of the paper's Table 2."""

    fill_factor: float
    skew_label: str
    min_cost: float
    optimal_hot_share: float
    cost_hot_60: float
    cost_hot_40: float

    @property
    def min_wamp(self) -> float:
        """The cost row converted to write amplification (Figure 3's
        y-axis): ``Wamp = Cost/2 - 1`` since ``Cost = 2/E``."""
        return self.min_cost / 2.0 - 1.0


def table2_row(m_percent: int, fill_factor: float = 0.8) -> Table2Row:
    """Compute one row of Table 2 (MinCost, Hot:60%, Hot:40%)."""
    updates, dists = hotcold_parameters(m_percent)
    g_opt = optimal_slack_split(fill_factor, updates, dists)
    return Table2Row(
        fill_factor=fill_factor,
        skew_label="%d:%d" % (m_percent, 100 - m_percent),
        min_cost=total_cost(fill_factor, updates, dists, (g_opt, 1.0 - g_opt)),
        optimal_hot_share=g_opt,
        cost_hot_60=total_cost(fill_factor, updates, dists, (0.6, 0.4)),
        cost_hot_40=total_cost(fill_factor, updates, dists, (0.4, 0.6)),
    )


def table2(
    skews: Sequence[int] = TABLE2_SKEWS, fill_factor: float = 0.8
) -> List[Table2Row]:
    """The full analysis side of Table 2."""
    return [table2_row(m, fill_factor) for m in skews]


def opt_wamp(m_percent: int, fill_factor: float = 0.8) -> float:
    """The analytic minimum write amplification for an ``m : 1-m`` skew —
    the "opt" line of Figure 3."""
    updates, dists = hotcold_parameters(m_percent)
    g_opt = optimal_slack_split(fill_factor, updates, dists)
    return total_wamp(fill_factor, updates, dists, (g_opt, 1.0 - g_opt))


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 < value < 1.0:
        raise ValueError("%s must be in (0, 1), got %r" % (name, value))


def _check_partition(name: str, values: Sequence[float]) -> None:
    if len(values) != 2:
        raise ValueError("%s must have exactly two entries" % name)
    total = sum(values)
    if abs(total - 1.0) > 1e-9:
        raise ValueError("%s must sum to 1, got %r" % (name, total))
    for v in values:
        _check_fraction(name + " entry", v)
