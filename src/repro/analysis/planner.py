"""Over-provisioning planner: the practical inverse of Table 1.

Table 1 answers "given a fill factor, what cleaning cost?".  A storage
designer asks the inverse: *how much over-provisioning buys a target
write amplification* (SSD vendors literally price this), or how much a
better cleaner is worth in saved flash.  These helpers invert the
Equation 4 fixpoint and the Section 3 separation analysis.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.analysis.cost_model import write_amplification
from repro.analysis.fixpoint import emptiness_fixpoint
from repro.analysis.multiclass import distribution_opt_wamp


def wamp_at_fill(fill_factor: float) -> float:
    """Age-based (uniform-workload) write amplification at ``F``."""
    return write_amplification(emptiness_fixpoint(fill_factor))


def fill_for_wamp(target_wamp: float, tol: float = 1e-9) -> float:
    """Largest fill factor whose uniform-workload Wamp stays at or below
    ``target_wamp`` (bisection over the monotone Equation 4 curve)."""
    if target_wamp < 0:
        raise ValueError("target write amplification cannot be negative")
    # The Equation 4 root is ill-conditioned within ~1e-6 of F = 1 (the
    # positive root merges with the degenerate E = 0 one), so the search
    # caps just below it.
    lo, hi = 1e-6, 1.0 - 1e-6
    if wamp_at_fill(hi) <= target_wamp:
        return hi
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if wamp_at_fill(mid) <= target_wamp:
            lo = mid
        else:
            hi = mid
    return lo


def overprovisioning_for_wamp(target_wamp: float) -> float:
    """Slack fraction ``1 - F`` needed for ``target_wamp`` under a
    uniform workload with age/greedy cleaning."""
    return 1.0 - fill_for_wamp(target_wamp)


@dataclasses.dataclass(frozen=True)
class SeparationSavings:
    """What frequency-aware cleaning is worth on a given distribution."""

    fill_factor: float
    uniform_wamp: float
    separated_wamp: float
    equivalent_fill: float

    @property
    def wamp_reduction(self) -> float:
        """Fraction of cleaning writes eliminated by separation."""
        if self.uniform_wamp == 0.0:
            return 0.0
        return 1.0 - self.separated_wamp / self.uniform_wamp

    @property
    def slack_saved(self) -> float:
        """Extra usable capacity: a frequency-blind cleaner would need a
        fill factor of only ``equivalent_fill`` to match the separated
        cleaner's Wamp at ``fill_factor``."""
        return self.fill_factor - self.equivalent_fill


def separation_savings(
    frequencies: Sequence[float],
    fill_factor: float,
    k: int = 16,
) -> SeparationSavings:
    """Quantify what an MDC-style separating cleaner buys on a workload.

    Compares the frequency-blind bound (the uniform fixpoint at ``F``)
    with the k-population separation bound on the actual distribution,
    and expresses the gap as equivalent over-provisioning.
    """
    uniform = wamp_at_fill(fill_factor)
    separated = distribution_opt_wamp(frequencies, fill_factor, k=k)
    equivalent = fill_for_wamp(separated)
    return SeparationSavings(
        fill_factor=fill_factor,
        uniform_wamp=uniform,
        separated_wamp=separated,
        equivalent_fill=min(equivalent, 1.0),
    )
