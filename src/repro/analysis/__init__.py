"""Closed-form models from the paper's Sections 2-4.

* :mod:`repro.analysis.cost_model` — Equations 1-2 (cost, Wamp).
* :mod:`repro.analysis.fixpoint` — Equations 3-4 and Table 1.
* :mod:`repro.analysis.hotcold` — Section 3, Table 2, Figure 3's "opt".
* :mod:`repro.analysis.lemma` — the Maximality Lemma.
"""

from repro.analysis.cost_model import (
    cleaning_reads,
    cleaning_writes,
    cost_per_segment,
    emptiness_from_wamp,
    emptiness_ratio,
    write_amplification,
)
from repro.analysis.fixpoint import (
    TABLE1_FILL_FACTORS,
    Table1Row,
    emptiness_fixpoint,
    table1,
    table1_row,
)
from repro.analysis.hotcold import (
    TABLE2_SKEWS,
    Table2Row,
    analytic_split_ratio,
    hotcold_parameters,
    opt_wamp,
    optimal_slack_split,
    population_emptiness,
    split_fill_factor,
    table2,
    table2_row,
    total_cost,
    total_wamp,
)
from repro.analysis.planner import (
    SeparationSavings,
    fill_for_wamp,
    overprovisioning_for_wamp,
    separation_savings,
    wamp_at_fill,
)
from repro.analysis.multiclass import (
    bucketize_frequencies,
    distribution_opt_wamp,
    optimal_slack_shares,
    separated_wamp,
)
from repro.analysis.lemma import (
    max_paired_sum,
    mdc_order,
    mdc_processing_cost,
    min_paired_sum,
    paired_sum,
)

__all__ = [
    "SeparationSavings",
    "TABLE1_FILL_FACTORS",
    "TABLE2_SKEWS",
    "fill_for_wamp",
    "overprovisioning_for_wamp",
    "separation_savings",
    "wamp_at_fill",
    "Table1Row",
    "Table2Row",
    "analytic_split_ratio",
    "bucketize_frequencies",
    "cleaning_reads",
    "distribution_opt_wamp",
    "optimal_slack_shares",
    "separated_wamp",
    "cleaning_writes",
    "cost_per_segment",
    "emptiness_fixpoint",
    "emptiness_from_wamp",
    "emptiness_ratio",
    "hotcold_parameters",
    "max_paired_sum",
    "mdc_order",
    "mdc_processing_cost",
    "min_paired_sum",
    "opt_wamp",
    "optimal_slack_split",
    "paired_sum",
    "population_emptiness",
    "split_fill_factor",
    "table1",
    "table1_row",
    "table2",
    "table2_row",
    "total_cost",
    "total_wamp",
    "write_amplification",
]
