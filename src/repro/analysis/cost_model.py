"""The paper's algebraic cleaning-cost model (Section 2.1).

With ``E`` the fraction of a segment that is empty when cleaned, writing
one segment of new data costs (Equation 1)::

    Cost_seg = 1/E reads + (1/E)(1 - E) writes + 1 write = 2/E

and the write amplification — cleaning writes per user write — is
(Equation 2)::

    Wamp = (1 - E) / E

These two are inverses of each other through ``E``, which lets simulation
results (measured Wamp) be checked directly against analysis (predicted
E): ``E = 1 / (1 + Wamp)``.
"""

from __future__ import annotations


def cost_per_segment(emptiness: float) -> float:
    """Equation 1: total I/O (in segment units) to write one segment of
    new data, including the cleaning it necessitates."""
    _check_emptiness(emptiness)
    return 2.0 / emptiness


def cleaning_reads(emptiness: float) -> float:
    """Segments read (cleaned) per segment of new data: ``1/E``."""
    _check_emptiness(emptiness)
    return 1.0 / emptiness


def cleaning_writes(emptiness: float) -> float:
    """Segments of relocated pages written per segment of new data:
    ``(1/E)(1 - E)`` — the write-amplification term of Equation 1."""
    _check_emptiness(emptiness)
    return (1.0 - emptiness) / emptiness


def write_amplification(emptiness: float) -> float:
    """Equation 2: ``Wamp = (1 - E) / E``."""
    _check_emptiness(emptiness)
    return (1.0 - emptiness) / emptiness


def emptiness_from_wamp(wamp: float) -> float:
    """Invert Equation 2: the cleaned-segment emptiness a measured write
    amplification implies."""
    if wamp < 0.0:
        raise ValueError("write amplification cannot be negative")
    return 1.0 / (1.0 + wamp)


def emptiness_ratio(emptiness: float, fill_factor: float) -> float:
    """Table 1's ``R = E / (1 - F)``: how much better a cleaner does than
    the device-wide average empty space."""
    if not 0.0 < fill_factor < 1.0:
        raise ValueError("fill_factor must be in (0, 1)")
    _check_emptiness(emptiness)
    return emptiness / (1.0 - fill_factor)


def breakeven_segment_pages(fill_factor: float, emptiness: float) -> float:
    """Segment size above which an LFS beats page-at-a-time writing.

    Section 2.1's example: at ``F = .8``, ``E >= .2`` gives
    ``IO/seg <= 10``, so segments beyond 10 pages win.
    """
    return cost_per_segment(emptiness)


def _check_emptiness(emptiness: float) -> None:
    if not 0.0 < emptiness <= 1.0:
        raise ValueError("emptiness must be in (0, 1], got %r" % (emptiness,))
