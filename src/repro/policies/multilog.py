"""Multi-log cleaning (Stoica & Ailamaki, PVLDB 2013 — reference [26]).

The state-of-the-art baseline the paper compares against.  Pages are
partitioned into multiple logs so that pages within each log have similar
update frequencies; each log appends to its own open segment.  Cleaning
is *local*: when a write to log ``L`` forces cleaning, the victim is the
most reclaimable among the oldest segments of ``L`` and its two
neighbouring logs, one segment per cycle (matching the evaluation setup
the reproduced paper uses for this algorithm).

Logs are power-of-two frequency classes, created lazily as traffic first
touches them: ``class(f) = floor(log2(f))``, capped at ``max_logs``
distinct classes (further classes clamp to the nearest existing one).
Lazy creation reproduces the convergence behaviour the paper criticizes —
the system "initially places all pages into one log and adjusts the
number of logs as the system runs", and with a noisy estimator it keeps
spawning classes "even though all pages have the same update frequency".

Two estimator variants, as in the paper:

* ``multi-log`` — per-page frequency estimated from the previous update
  timestamp, ``Upf ≈ 1 / (u_now - last_write)``;
* ``multi-log-opt`` — exact (pre-analyzed) page update frequencies, so
  under a uniform distribution every page lands in one class and the
  policy degenerates to age-based cleaning, exactly as the paper
  describes.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.policies.base import CleaningPolicy

#: Class id for pages with no usable frequency signal (never written, or
#: zero oracle frequency): colder than any real class.
_COLD_CLASS = -(10 ** 9)

#: Sentinel in the segment->class column for segments no class has
#: opened; sorts below every real class id.
_UNASSIGNED = np.iinfo(np.int64).min


class MultiLogPolicy(CleaningPolicy):
    """Frequency-partitioned logs with local victim selection."""

    uses_sort_buffer = False

    def __init__(
        self, exact: bool = False, max_logs: int = 8, class_base: float = 4.0
    ) -> None:
        super().__init__()
        if max_logs < 1:
            raise ValueError("max_logs must be >= 1")
        if class_base <= 1.0:
            raise ValueError("class_base must exceed 1.0")
        self.exact = exact
        self.max_logs = max_logs
        self._log_base = math.log(class_base)
        self.class_base = class_base
        self.name = "multi-log-opt" if exact else "multi-log"
        #: Effective cap, possibly reduced at bind time to fit the
        #: device's slack (one open segment per log must fit in it).
        self._max_logs_effective = max_logs
        #: Existing classes, sorted cold -> hot (created lazily).
        self._classes: List[int] = []
        self._last_class = _COLD_CLASS
        #: Segment -> class that wrote it (refreshed on every open); an
        #: int64 column parallel to the segment table, allocated at bind.
        self._seg_class: Optional[np.ndarray] = None

    def bind(self, store) -> None:
        super().bind(store)
        cfg = store.config
        slack_segments = int(cfg.n_segments * (1.0 - cfg.fill_factor))
        # Each log needs an open segment, and min_free_target() reserves
        # n_logs + 2 free segments; both must fit inside the slack.
        fit = max(1, (slack_segments - cfg.clean_trigger - 2) // 2)
        self._max_logs_effective = min(self.max_logs, fit)
        self._seg_class = np.full(cfg.n_segments, _UNASSIGNED, dtype=np.int64)

    # -- frequency classes -------------------------------------------------

    def _freq(self, page_id: int) -> float:
        pages = self.store.pages
        if self.exact:
            return pages.oracle_freq[page_id]
        last = pages.last_write[page_id]
        if last <= 0:
            return 0.0
        return 1.0 / max(1, self.store.clock - last)

    def _class_of(self, freq: float) -> int:
        if freq <= 0.0:
            return self._classes[0] if self._classes else self._ensure_class(_COLD_CLASS)
        cls = math.floor(math.log(freq) / self._log_base)
        return self._ensure_class(cls)

    def _ensure_class(self, cls: int) -> int:
        classes = self._classes
        if not classes:
            classes.append(cls)
            return cls
        lo = 0
        hi = len(classes)
        while lo < hi:
            mid = (lo + hi) // 2
            if classes[mid] < cls:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(classes) and classes[lo] == cls:
            return cls
        if len(classes) >= self._max_logs_effective:
            # Clamp to the nearest existing class.
            if lo == 0:
                return classes[0]
            if lo == len(classes):
                return classes[-1]
            before, after = classes[lo - 1], classes[lo]
            return before if cls - before <= after - cls else after
        classes.insert(lo, cls)
        return cls

    @property
    def n_logs(self) -> int:
        return max(1, len(self._classes))

    # -- placement -----------------------------------------------------

    def route_user(self, page_id: int) -> int:
        cls = self._class_of(self._freq(page_id))
        self._last_class = cls
        return cls

    def place_gc(
        self, page_ids: List[int], src_segs: List[int]
    ) -> Iterable[Tuple[int, int]]:
        if self.exact:
            # Exact frequencies are authoritative; survivors rejoin the
            # class they actually belong to.
            return [(pid, self._class_of(self._freq(pid))) for pid in page_ids]
        # Estimated variant: survivors of cleaning were, by definition,
        # not updated while their segment filled with garbage — they are
        # colder than their log assumed.  Demote each one to the next
        # colder class than its source segment's: the gradual hot-to-cold
        # migration of the multi-log design.
        classes = self._classes
        if not classes or not page_ids:
            # No classes exist yet: the first demotion creates the cold
            # class, which the scalar path handles.
            return [
                (pid, self._colder_class(self._lookup_class(src)))
                for pid, src in zip(page_ids, src_segs)
            ]
        src_cls = self._seg_class[np.asarray(src_segs, dtype=np.int64)]
        cls_arr = np.asarray(classes, dtype=np.int64)
        # bisect_left per source class, one step colder, floored at the
        # coldest (the unassigned sentinel lands there on its own).
        lo = np.searchsorted(cls_arr, src_cls, side="left")
        colder = cls_arr[np.maximum(lo - 1, 0)]
        return list(zip(page_ids, colder.tolist()))

    def _lookup_class(self, seg: int) -> Optional[int]:
        cls = self._seg_class[seg]
        return None if cls == _UNASSIGNED else int(cls)

    def place_gc_batch(
        self, page_ids: np.ndarray, src_segs: np.ndarray
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        # The exact variant reclassifies through _class_of, which can
        # mutate the class set mid-batch — tuple protocol handles that.
        if self.exact or not self._classes or page_ids.size == 0:
            return None
        cls_arr = np.asarray(self._classes, dtype=np.int64)
        lo = np.searchsorted(cls_arr, self._seg_class[src_segs], side="left")
        return page_ids, cls_arr[np.maximum(lo - 1, 0)]

    def _colder_class(self, cls: Optional[int]) -> int:
        classes = self._classes
        if not classes:
            return self._ensure_class(_COLD_CLASS)
        if cls is None:
            return classes[0]
        lo = 0
        hi = len(classes)
        while lo < hi:
            mid = (lo + hi) // 2
            if classes[mid] < cls:
                lo = mid + 1
            else:
                hi = mid
        # lo is the position of cls (or its insertion point); one step
        # colder, floored at the coldest class.
        return classes[max(0, lo - 1)]

    def on_segment_open(self, seg: int, stream: int) -> None:
        self._seg_class[seg] = stream

    def state_dict(self) -> dict:
        assigned = np.flatnonzero(self._seg_class != _UNASSIGNED)
        return {
            "classes": list(self._classes),
            "last_class": self._last_class,
            "seg_class": {
                str(int(s)): int(self._seg_class[s]) for s in assigned
            },
        }

    def load_state_dict(self, state: dict) -> None:
        self._classes = [int(c) for c in state["classes"]]
        self._last_class = int(state["last_class"])
        self._seg_class.fill(_UNASSIGNED)
        for k, v in state["seg_class"].items():
            self._seg_class[int(k)] = int(v)

    def min_free_target(self) -> int:
        # One open segment per class can be allocated within a single
        # cleaning cycle; keep headroom for all of them plus slack.
        return max(self.store.config.clean_trigger, self.n_logs + 2)

    # -- victim selection ------------------------------------------------

    #: The fallback ranking (available space) is a pure column function.
    clock_dependent_rank = False

    def rank_columns(self, segs, ids: np.ndarray) -> np.ndarray:
        """Global fallback ranking: most reclaimable space first (used
        when the local neighbourhood has nothing cleanable)."""
        return -(segs.capacity - segs.live_units[ids]).astype(float)

    def decision_columns(self, segs, ids: np.ndarray) -> dict:
        columns = super().decision_columns(segs, ids)
        cls = self._seg_class[ids].astype(np.float64)
        # The unassigned sentinel would dwarf every real class id in the
        # export; map it just below the cold class instead.
        cls[self._seg_class[ids] == _UNASSIGNED] = _COLD_CLASS - 1
        columns["log_class"] = cls
        columns["seal_time"] = segs.seal_time[ids].astype(np.float64)
        return columns

    def select_victims(
        self, candidates: Sequence[int], n: Optional[int] = None
    ) -> List[int]:
        """Local-optimal choice among the last-written log and its two
        neighbours; one segment per cycle."""
        segs = self.store.segments
        classes = self._classes
        ids = np.asarray(candidates, dtype=np.int64)
        best: Optional[int] = None
        best_avail = -1
        if classes and ids.size:
            try:
                pos = classes.index(self._last_class)
            except ValueError:
                pos = 0
            neighbourhood = classes[max(0, pos - 1) : pos + 2]
            cand_cls = self._seg_class[ids]
            seal_time = segs.seal_time[ids]
            capacity = segs.capacity
            live_units = segs.live_units
            # Oldest candidate of each neighbourhood class, classes
            # considered in the order the candidate scan first meets
            # them (preserving the original dict-insertion tie order).
            per_class = []
            for cls in neighbourhood:
                members = np.flatnonzero(cand_cls == cls)
                if members.size == 0:
                    continue
                oldest = int(ids[members[np.argmin(seal_time[members])]])
                per_class.append((int(members[0]), oldest))
            per_class.sort()
            for _, seg in per_class:
                avail = capacity - int(live_units[seg])
                if avail > best_avail:
                    best, best_avail = seg, avail
        if best is None or best_avail == 0:
            # Local neighbourhood has nothing reclaimable: fall back to
            # the global greedy pick so the system keeps making progress.
            return super().select_victims(candidates, n=1)
        return [best]
