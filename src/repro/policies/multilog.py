"""Multi-log cleaning (Stoica & Ailamaki, PVLDB 2013 — reference [26]).

The state-of-the-art baseline the paper compares against.  Pages are
partitioned into multiple logs so that pages within each log have similar
update frequencies; each log appends to its own open segment.  Cleaning
is *local*: when a write to log ``L`` forces cleaning, the victim is the
most reclaimable among the oldest segments of ``L`` and its two
neighbouring logs, one segment per cycle (matching the evaluation setup
the reproduced paper uses for this algorithm).

Logs are power-of-two frequency classes, created lazily as traffic first
touches them: ``class(f) = floor(log2(f))``, capped at ``max_logs``
distinct classes (further classes clamp to the nearest existing one).
Lazy creation reproduces the convergence behaviour the paper criticizes —
the system "initially places all pages into one log and adjusts the
number of logs as the system runs", and with a noisy estimator it keeps
spawning classes "even though all pages have the same update frequency".

Two estimator variants, as in the paper:

* ``multi-log`` — per-page frequency estimated from the previous update
  timestamp, ``Upf ≈ 1 / (u_now - last_write)``;
* ``multi-log-opt`` — exact (pre-analyzed) page update frequencies, so
  under a uniform distribution every page lands in one class and the
  policy degenerates to age-based cleaning, exactly as the paper
  describes.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.policies.base import CleaningPolicy

#: Class id for pages with no usable frequency signal (never written, or
#: zero oracle frequency): colder than any real class.
_COLD_CLASS = -(10 ** 9)


class MultiLogPolicy(CleaningPolicy):
    """Frequency-partitioned logs with local victim selection."""

    uses_sort_buffer = False

    def __init__(
        self, exact: bool = False, max_logs: int = 8, class_base: float = 4.0
    ) -> None:
        super().__init__()
        if max_logs < 1:
            raise ValueError("max_logs must be >= 1")
        if class_base <= 1.0:
            raise ValueError("class_base must exceed 1.0")
        self.exact = exact
        self.max_logs = max_logs
        self._log_base = math.log(class_base)
        self.class_base = class_base
        self.name = "multi-log-opt" if exact else "multi-log"
        #: Effective cap, possibly reduced at bind time to fit the
        #: device's slack (one open segment per log must fit in it).
        self._max_logs_effective = max_logs
        #: Existing classes, sorted cold -> hot (created lazily).
        self._classes: List[int] = []
        self._last_class = _COLD_CLASS
        #: Segment -> class that wrote it (refreshed on every open).
        self._seg_class: Dict[int, int] = {}

    def bind(self, store) -> None:
        super().bind(store)
        cfg = store.config
        slack_segments = int(cfg.n_segments * (1.0 - cfg.fill_factor))
        # Each log needs an open segment, and min_free_target() reserves
        # n_logs + 2 free segments; both must fit inside the slack.
        fit = max(1, (slack_segments - cfg.clean_trigger - 2) // 2)
        self._max_logs_effective = min(self.max_logs, fit)

    # -- frequency classes -------------------------------------------------

    def _freq(self, page_id: int) -> float:
        pages = self.store.pages
        if self.exact:
            return pages.oracle_freq[page_id]
        last = pages.last_write[page_id]
        if last <= 0:
            return 0.0
        return 1.0 / max(1, self.store.clock - last)

    def _class_of(self, freq: float) -> int:
        if freq <= 0.0:
            return self._classes[0] if self._classes else self._ensure_class(_COLD_CLASS)
        cls = math.floor(math.log(freq) / self._log_base)
        return self._ensure_class(cls)

    def _ensure_class(self, cls: int) -> int:
        classes = self._classes
        if not classes:
            classes.append(cls)
            return cls
        lo = 0
        hi = len(classes)
        while lo < hi:
            mid = (lo + hi) // 2
            if classes[mid] < cls:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(classes) and classes[lo] == cls:
            return cls
        if len(classes) >= self._max_logs_effective:
            # Clamp to the nearest existing class.
            if lo == 0:
                return classes[0]
            if lo == len(classes):
                return classes[-1]
            before, after = classes[lo - 1], classes[lo]
            return before if cls - before <= after - cls else after
        classes.insert(lo, cls)
        return cls

    @property
    def n_logs(self) -> int:
        return max(1, len(self._classes))

    # -- placement -----------------------------------------------------

    def route_user(self, page_id: int) -> int:
        cls = self._class_of(self._freq(page_id))
        self._last_class = cls
        return cls

    def place_gc(
        self, page_ids: List[int], src_segs: List[int]
    ) -> Iterable[Tuple[int, int]]:
        if self.exact:
            # Exact frequencies are authoritative; survivors rejoin the
            # class they actually belong to.
            return [(pid, self._class_of(self._freq(pid))) for pid in page_ids]
        # Estimated variant: survivors of cleaning were, by definition,
        # not updated while their segment filled with garbage — they are
        # colder than their log assumed.  Demote each one to the next
        # colder class than its source segment's: the gradual hot-to-cold
        # migration of the multi-log design.
        placements = []
        for pid, src in zip(page_ids, src_segs):
            src_class = self._seg_class.get(src)
            placements.append((pid, self._colder_class(src_class)))
        return placements

    def _colder_class(self, cls: Optional[int]) -> int:
        classes = self._classes
        if not classes:
            return self._ensure_class(_COLD_CLASS)
        if cls is None:
            return classes[0]
        lo = 0
        hi = len(classes)
        while lo < hi:
            mid = (lo + hi) // 2
            if classes[mid] < cls:
                lo = mid + 1
            else:
                hi = mid
        # lo is the position of cls (or its insertion point); one step
        # colder, floored at the coldest class.
        return classes[max(0, lo - 1)]

    def on_segment_open(self, seg: int, stream: int) -> None:
        self._seg_class[seg] = stream

    def state_dict(self) -> dict:
        return {
            "classes": list(self._classes),
            "last_class": self._last_class,
            "seg_class": {str(k): v for k, v in self._seg_class.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        self._classes = [int(c) for c in state["classes"]]
        self._last_class = int(state["last_class"])
        self._seg_class = {int(k): int(v) for k, v in state["seg_class"].items()}

    def min_free_target(self) -> int:
        # One open segment per class can be allocated within a single
        # cleaning cycle; keep headroom for all of them plus slack.
        return max(self.store.config.clean_trigger, self.n_logs + 2)

    # -- victim selection ------------------------------------------------

    def rank(self, candidates: Sequence[int]) -> np.ndarray:
        """Global fallback ranking: most reclaimable space first (used
        when the local neighbourhood has nothing cleanable)."""
        segs = self.store.segments
        capacity = segs.capacity
        live_units = segs.live_units
        return np.array(
            [-(capacity - live_units[s]) for s in candidates], dtype=float
        )

    def select_victims(
        self, candidates: Sequence[int], n: Optional[int] = None
    ) -> List[int]:
        """Local-optimal choice among the last-written log and its two
        neighbours; one segment per cycle."""
        segs = self.store.segments
        classes = self._classes
        if classes:
            try:
                pos = classes.index(self._last_class)
            except ValueError:
                pos = 0
            neighbourhood = set(classes[max(0, pos - 1) : pos + 2])
        else:
            neighbourhood = set()
        capacity = segs.capacity
        live_units = segs.live_units
        seal_time = segs.seal_time
        seg_class = self._seg_class
        oldest: Dict[int, int] = {}
        for seg in candidates:
            cls = seg_class.get(seg)
            if cls not in neighbourhood:
                continue
            cur = oldest.get(cls)
            if cur is None or seal_time[seg] < seal_time[cur]:
                oldest[cls] = seg
        best: Optional[int] = None
        best_avail = -1
        for seg in oldest.values():
            avail = capacity - live_units[seg]
            if avail > best_avail:
                best, best_avail = seg, avail
        if best is None or best_avail == 0:
            # Local neighbourhood has nothing reclaimable: fall back to
            # the global greedy pick so the system keeps making progress.
            return super().select_victims(candidates, n=1)
        return [best]
