"""Name-based construction of cleaning policies.

The names match the labels used in the paper's figures, so a benchmark
sweep is written as ``for name in FIGURE5_POLICIES: make_policy(name)``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.mdc import MdcPolicy
from repro.policies.age import AgePolicy
from repro.policies.base import CleaningPolicy
from repro.policies.cost_benefit import CostBenefitPaperPolicy, CostBenefitPolicy
from repro.policies.greedy import GreedyPolicy
from repro.policies.multilog import MultiLogPolicy

_FACTORIES: Dict[str, Callable[..., CleaningPolicy]] = {
    "age": AgePolicy,
    "greedy": GreedyPolicy,
    "cost-benefit": CostBenefitPolicy,
    "cost-benefit-paper": CostBenefitPaperPolicy,
    "multi-log": lambda **kw: MultiLogPolicy(exact=False, **kw),
    "multi-log-opt": lambda **kw: MultiLogPolicy(exact=True, **kw),
    "mdc": lambda **kw: MdcPolicy(estimator="up2", **kw),
    "mdc-opt": lambda **kw: MdcPolicy(estimator="exact", **kw),
    "mdc-up1": lambda **kw: MdcPolicy(estimator="up1", **kw),
    "mdc-no-sep-user": lambda **kw: MdcPolicy(
        estimator="up2", separate_user=False, **kw
    ),
    "mdc-no-sep-user-gc": lambda **kw: MdcPolicy(
        estimator="up2", separate_user=False, separate_gc=False, **kw
    ),
}

#: The algorithm line-up of Figures 5 and 6.
FIGURE5_POLICIES: List[str] = [
    "age",
    "greedy",
    "cost-benefit",
    "multi-log",
    "multi-log-opt",
    "mdc",
    "mdc-opt",
]

#: The ablation line-up of Figure 3 (plus the analytic "opt" series,
#: which is computed, not simulated).
FIGURE3_POLICIES: List[str] = [
    "greedy",
    "mdc-no-sep-user-gc",
    "mdc-no-sep-user",
    "mdc",
    "mdc-opt",
]

#: One representative per policy family — the line-up the differential
#: harness (:mod:`repro.testkit.differential`) cross-validates against
#: the dict-based oracle.  The ``-opt`` / ablation variants share all
#: their store-facing machinery with these five.
DIFFERENTIAL_POLICIES: List[str] = [
    "age",
    "greedy",
    "cost-benefit",
    "multi-log",
    "mdc",
]


def available_policies() -> List[str]:
    """All registered policy names, sorted."""
    return sorted(_FACTORIES)


def make_policy(name: str, **kwargs) -> CleaningPolicy:
    """Construct a policy by its paper-figure name.

    Extra keyword arguments are forwarded to the policy constructor
    (e.g. ``make_policy("multi-log", max_logs=32)``).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            "unknown policy %r; available: %s" % (name, ", ".join(available_policies()))
        ) from None
    return factory(**kwargs)
