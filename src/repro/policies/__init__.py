"""Cleaning policies: the paper's algorithm line-up.

Construct by name with :func:`make_policy`; names match the labels in the
paper's figures (``"age"``, ``"greedy"``, ``"cost-benefit"``,
``"multi-log"``, ``"multi-log-opt"``, ``"mdc"``, ``"mdc-opt"``, plus the
Figure 3 ablations ``"mdc-no-sep-user"`` and ``"mdc-no-sep-user-gc"``).
"""

from repro.core.mdc import MdcPolicy
from repro.policies.age import AgePolicy
from repro.policies.base import CleaningPolicy
from repro.policies.cost_benefit import CostBenefitPaperPolicy, CostBenefitPolicy
from repro.policies.greedy import GreedyPolicy
from repro.policies.multilog import MultiLogPolicy
from repro.policies.registry import (
    DIFFERENTIAL_POLICIES,
    FIGURE3_POLICIES,
    FIGURE5_POLICIES,
    available_policies,
    make_policy,
)

__all__ = [
    "AgePolicy",
    "CleaningPolicy",
    "CostBenefitPaperPolicy",
    "CostBenefitPolicy",
    "DIFFERENTIAL_POLICIES",
    "FIGURE3_POLICIES",
    "FIGURE5_POLICIES",
    "GreedyPolicy",
    "MdcPolicy",
    "MultiLogPolicy",
    "available_policies",
    "make_policy",
]
