"""The cleaning-policy protocol.

A policy makes the two decisions the paper studies, and only those:

1. **Placement** — which open segment (stream) each page write goes to,
   and whether/how batches of writes are sorted by update frequency
   before packing (``route_user`` / ``user_sort_key`` / ``place_gc``).
2. **Victim selection** — which sealed segments to clean next
   (``rank`` / ``select_victims``).

Everything mechanical (page table, space accounting, sealing, the
cleaning cycle itself) lives in the store, so policies stay small and
directly comparable — exactly the paper's experimental methodology.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.store.log_store import GC_STREAM, LogStructuredStore


class CleaningPolicy(abc.ABC):
    """Base class for cleaning policies.

    Subclasses usually only implement :meth:`rank`; the default
    :meth:`select_victims` turns the ranking into a victim batch with a
    net-space-gain guarantee.
    """

    #: Registry name; subclasses override.
    name = "abstract"
    #: Whether user writes should pass through the store's sorting buffer
    #: (only the frequency-separating MDC variants use it).
    uses_sort_buffer = False

    def __init__(self) -> None:
        self.store: Optional[LogStructuredStore] = None

    def bind(self, store: LogStructuredStore) -> None:
        """Called once by the store's constructor."""
        self.store = store

    # -- placement -----------------------------------------------------

    def route_user(self, page_id: int) -> int:
        """Stream (open segment) for a user write.  Default: one stream."""
        return 0

    def user_sort_key(self, page_ids: Sequence[int]) -> Optional[Sequence[float]]:
        """Sort keys for a drained write-buffer batch; ``None`` keeps the
        arrival order (no frequency separation of user writes)."""
        return None

    def place_gc(
        self, page_ids: List[int], src_segs: List[int]
    ) -> Iterable[Tuple[int, int]]:
        """Order and route relocated pages.

        ``src_segs`` is parallel to ``page_ids``: the (already freed)
        segment each page came from, for policies that route survivors by
        their source's properties.  Returns ``(page_id, stream)`` pairs
        in emission order.  Default: keep collection order, write
        everything to the dedicated GC stream (standard LFS practice —
        survivors do not mix with fresh user writes in the same segment).
        """
        return [(pid, GC_STREAM) for pid in page_ids]

    def on_segment_open(self, seg: int, stream: int) -> None:
        """Notification that ``seg`` became the open segment of
        ``stream``; policies that tag segments (multi-log) override."""

    def min_free_target(self) -> int:
        """Free-segment level cleaning must restore.

        At least the configured trigger; policies that write through many
        streams (multi-log) need headroom for one open segment per
        stream so a single cleaning cycle cannot exhaust the reserve.
        """
        return self.store.config.clean_trigger

    # -- victim selection ------------------------------------------------

    @abc.abstractmethod
    def rank(self, candidates: Sequence[int]) -> np.ndarray:
        """Priority per candidate segment; lower = clean earlier."""

    def select_victims(
        self, candidates: Sequence[int], n: Optional[int] = None
    ) -> List[int]:
        """Pick a victim batch by ascending :meth:`rank`.

        Takes the configured batch size, then keeps extending the batch
        until the reclaimable space in it is at least one whole segment,
        so a cleaning cycle always makes net forward progress.  Returns
        an empty list when nothing at all is reclaimable.
        """
        store = self.store
        if n is None:
            n = store.config.clean_batch
        priorities = np.asarray(self.rank(candidates), dtype=float)
        order = np.argsort(priorities, kind="stable")
        segs = store.segments
        capacity = segs.capacity
        live_units = segs.live_units
        victims: List[int] = []
        reclaim = 0
        for idx in order:
            if len(victims) >= n and reclaim >= capacity:
                break
            seg = candidates[idx]
            victims.append(seg)
            reclaim += capacity - live_units[seg]
        if reclaim == 0:
            return []
        return victims

    # -- persistence ------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable policy state for store checkpoints.

        The default is empty: most policies keep all their bookkeeping
        in the store's own tables.  Policies with private state
        (multi-log's frequency classes) override both hooks.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore what :meth:`state_dict` produced."""
        if state:
            raise ValueError(
                "%s has no private state but the checkpoint carries %r"
                % (self.name, sorted(state))
            )

    # -- introspection ---------------------------------------------------

    def describe(self) -> str:
        """One-line description used in experiment logs."""
        return self.name

    def __repr__(self) -> str:
        return "<%s policy>" % self.name
