"""The cleaning-policy protocol.

A policy makes the two decisions the paper studies, and only those:

1. **Placement** — which open segment (stream) each page write goes to,
   and whether/how batches of writes are sorted by update frequency
   before packing (``route_user`` / ``route_user_batch`` /
   ``user_sort_key`` / ``place_gc``).
2. **Victim selection** — which sealed segments to clean next
   (``rank_columns`` / ``select_victims``).

Everything mechanical (page table, space accounting, sealing, the
cleaning cycle itself) lives in the store, so policies stay small and
directly comparable — exactly the paper's experimental methodology.

Victim ranking is column-based: ``rank_columns(segs, ids)`` computes
priorities directly from the :class:`~repro.store.segments.SegmentTable`
arrays with fancy indexing, no per-segment Python gathering.  The
id-list :meth:`CleaningPolicy.rank` remains as a convenience wrapper
(and as the override point for out-of-tree policies written against the
old protocol).  Policies whose priority does not reference the moving
clock declare ``clock_dependent_rank = False`` and get per-segment
priority caching for free: the store's segment ``epoch`` counter marks
which segments changed since the last cleaning cycle, and only those are
re-scored.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.store.kernels import ascending_prefix
from repro.store.log_store import GC_STREAM, LogStructuredStore
from repro.store.segments import SegmentTable

#: Candidate-count multiple above which ``select_victims`` switches from
#: a full sort to ``np.argpartition`` of the needed prefix.
_PARTITION_FACTOR = 4
#: Extra order entries taken beyond the requested batch, covering the
#: net-gain extension and skipped zero-avail segments before the full
#: sort fallback kicks in.
_ORDER_SLACK = 16


class CleaningPolicy(abc.ABC):
    """Base class for cleaning policies.

    Subclasses usually only implement :meth:`rank_columns`; the default
    :meth:`select_victims` turns the ranking into a victim batch with a
    net-space-gain guarantee.
    """

    #: Registry name; subclasses override.
    name = "abstract"
    #: Whether user writes should pass through the store's sorting buffer
    #: (only the frequency-separating MDC variants use it).
    uses_sort_buffer = False
    #: Whether :meth:`rank_columns` reads the store clock (or any other
    #: global that moves between cleaning cycles).  When False, the
    #: priority of a segment is a pure elementwise function of its
    #: SegmentTable columns, and select_victims caches it per segment
    #: until the segment's ``epoch`` advances.  The conservative default
    #: (True) disables caching.
    clock_dependent_rank = True

    def __init__(self) -> None:
        self.store: Optional[LogStructuredStore] = None
        self._prio_cache: Optional[np.ndarray] = None
        self._prio_epoch: Optional[np.ndarray] = None

    def bind(self, store: LogStructuredStore) -> None:
        """Called once by the store's constructor."""
        self.store = store

    # -- placement -----------------------------------------------------

    def route_user(self, page_id: int) -> int:
        """Stream (open segment) for a user write.  Default: one stream."""
        return 0

    def route_user_batch(self, page_ids: np.ndarray) -> Optional[np.ndarray]:
        """Streams for a batch of user writes, or ``None`` when routing
        must be computed write-by-write.

        The batch write engine calls this once per batch; a non-None
        return promises that routing each page does not depend on the
        effects of the preceding writes in the batch.  The default
        mirrors the default :meth:`route_user` (everything to stream 0)
        — but only while ``route_user`` itself is not overridden; a
        policy that overrides ``route_user`` with per-write state
        (multi-log's frequency classes) automatically falls back to the
        scalar path unless it also overrides this method.
        """
        if type(self).route_user is not CleaningPolicy.route_user:
            return None
        return np.zeros(len(page_ids), dtype=np.int64)

    def user_sort_key(self, page_ids: Sequence[int]) -> Optional[Sequence[float]]:
        """Sort keys for a drained write-buffer batch; ``None`` keeps the
        arrival order (no frequency separation of user writes)."""
        return None

    def place_gc(
        self, page_ids: List[int], src_segs: List[int]
    ) -> Iterable[Tuple[int, int]]:
        """Order and route relocated pages.

        ``src_segs`` is parallel to ``page_ids``: the (already freed)
        segment each page came from, for policies that route survivors by
        their source's properties.  Returns ``(page_id, stream)`` pairs
        in emission order.  Default: keep collection order, write
        everything to the dedicated GC stream (standard LFS practice —
        survivors do not mix with fresh user writes in the same segment).
        """
        return [(pid, GC_STREAM) for pid in page_ids]

    def place_gc_batch(
        self, page_ids: np.ndarray, src_segs: np.ndarray
    ) -> Optional[Tuple[np.ndarray, Optional[np.ndarray]]]:
        """Array form of :meth:`place_gc`, or ``None`` to fall back to
        the tuple protocol.

        Returns ``(page_ids, streams)`` in emission order; a ``None``
        stream array means everything goes to the GC stream.  The
        default mirrors the default :meth:`place_gc` — but only while
        ``place_gc`` itself is not overridden, so tuple-protocol
        policies keep their behavior.
        """
        if type(self).place_gc is not CleaningPolicy.place_gc:
            return None
        return page_ids, None

    def on_segment_open(self, seg: int, stream: int) -> None:
        """Notification that ``seg`` became the open segment of
        ``stream``; policies that tag segments (multi-log) override."""

    def min_free_target(self) -> int:
        """Free-segment level cleaning must restore.

        At least the configured trigger; policies that write through many
        streams (multi-log) need headroom for one open segment per
        stream so a single cleaning cycle cannot exhaust the reserve.
        """
        return self.store.config.clean_trigger

    # -- victim selection ------------------------------------------------

    def rank(self, candidates: Sequence[int]) -> np.ndarray:
        """Priority per candidate segment; lower = clean earlier.

        Convenience wrapper over :meth:`rank_columns`; out-of-tree
        policies may override this instead.
        """
        return self.rank_columns(
            self.store.segments, np.asarray(candidates, dtype=np.int64)
        )

    def rank_columns(self, segs: SegmentTable, ids: np.ndarray) -> np.ndarray:
        """Priority per candidate, computed from the segment-table
        columns; lower = clean earlier.  ``ids`` is an int64 array.

        When ``clock_dependent_rank`` is False this must be an
        elementwise-pure function of the columns: segment ``s``'s
        priority may depend only on values indexed by ``s`` (the epoch
        cache re-scores segments individually).
        """
        if type(self).rank is CleaningPolicy.rank:
            raise NotImplementedError(
                "%s implements neither rank nor rank_columns" % type(self).__name__
            )
        return np.asarray(self.rank([int(s) for s in ids]), dtype=float)

    def decision_columns(self, segs: SegmentTable, ids: np.ndarray) -> dict:
        """The ranking context behind a victim choice, one array per
        named quantity, parallel to ``ids``.

        This is what decision tracing exports so "why this segment?" is
        answerable after the fact.  Every policy shares the base set —
        available space ``A``, live count ``C``, the segment's second
        last update ``up2``, and the policy's own priority ``score``
        (lower = cleaned earlier) — and subclasses append the inputs
        specific to their formula (MDC's decline estimate, cost-benefit's
        age, multi-log's class, ...).
        """
        return {
            "A": (segs.capacity - segs.live_units[ids]).astype(np.float64),
            "C": segs.live_count[ids].astype(np.float64),
            "up2": segs.up2[ids].copy(),
            "score": np.asarray(self.rank_columns(segs, ids), dtype=float),
        }

    def _ranked_priorities(self, ids: np.ndarray) -> np.ndarray:
        """Priorities for ``ids``, through the epoch cache when the
        ranking is cacheable."""
        segs = self.store.segments
        if self.clock_dependent_rank:
            return np.asarray(self.rank_columns(segs, ids), dtype=float)
        cache = self._prio_cache
        if cache is None or cache.size < len(segs):
            n = len(segs)
            self._prio_cache = cache = np.zeros(n, dtype=np.float64)
            self._prio_epoch = np.full(n, -1, dtype=np.int64)
        seen = self._prio_epoch
        epochs = segs.epoch[ids]
        stale = seen[ids] != epochs
        if stale.any():
            stale_ids = ids[stale]
            cache[stale_ids] = np.asarray(
                self.rank_columns(segs, stale_ids), dtype=float
            )
            seen[stale_ids] = epochs[stale]
        return cache[ids]

    def select_victims(
        self, candidates: Sequence[int], n: Optional[int] = None
    ) -> List[int]:
        """Pick a victim batch by ascending :meth:`rank_columns`.

        Takes the configured batch size, then keeps extending the batch
        until the reclaimable space in it is at least one whole segment,
        so a cleaning cycle always makes net forward progress.  Segments
        with no reclaimable space (``A == 0``, priority ``+inf``) are
        never selected — cleaning one burns an erase and relocates a
        full segment of live pages for zero gain.  Returns an empty list
        when nothing at all is reclaimable.
        """
        store = self.store
        if n is None:
            n = store.config.clean_batch
        ids = np.asarray(candidates, dtype=np.int64)
        if ids.size == 0:
            return []
        priorities = self._ranked_priorities(ids)
        order = _ascending_prefix(priorities, n + _ORDER_SLACK)
        victims, reclaim = self._take_victims(ids, order, priorities, n)
        if (
            order.size < ids.size
            and not (len(victims) >= n and reclaim >= store.segments.capacity)
        ):
            # The partial order ran out before the batch was satisfied;
            # only the full sort can tell whether more is reclaimable.
            order = np.argsort(priorities, kind="stable")
            victims, reclaim = self._take_victims(ids, order, priorities, n)
        if reclaim == 0:
            return []
        return victims

    def _take_victims(
        self,
        ids: np.ndarray,
        order: np.ndarray,
        priorities: np.ndarray,
        n: int,
    ) -> Tuple[List[int], int]:
        segs = self.store.segments
        capacity = segs.capacity
        ranked = ids[order]
        avail = capacity - segs.live_units[ranked]
        pos = np.flatnonzero(avail > 0)
        if pos.size == 0:
            return [], 0
        cum = np.cumsum(avail[pos])
        # Stop after the earliest prefix that satisfies both the batch
        # size and the whole-segment net gain; take everything when the
        # order runs out first.
        t = max(n - 1, int(np.searchsorted(cum, capacity, side="left")))
        t = min(t, pos.size - 1)
        return ranked[pos[: t + 1]].tolist(), int(cum[t])

    # -- persistence ------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable policy state for store checkpoints.

        The default is empty: most policies keep all their bookkeeping
        in the store's own tables.  Policies with private state
        (multi-log's frequency classes) override both hooks.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore what :meth:`state_dict` produced."""
        if state:
            raise ValueError(
                "%s has no private state but the checkpoint carries %r"
                % (self.name, sorted(state))
            )

    # -- introspection ---------------------------------------------------

    def describe(self) -> str:
        """One-line description used in experiment logs."""
        return self.name

    def __repr__(self) -> str:
        return "<%s policy>" % self.name


def _ascending_prefix(priorities: np.ndarray, need: int) -> np.ndarray:
    """The first ``>= need`` entries of ``argsort(priorities, stable)``
    without sorting everything — the victim-scoring selection, dispatched
    through :mod:`repro.store.kernels` (optional numba implementation
    behind a bit-identical numpy fallback)."""
    return ascending_prefix(priorities, need, _PARTITION_FACTOR)
