"""Greedy cleaning.

Always clean the segment with the most available (reclaimable) space —
the highest ``E``.  Optimal under a uniform update distribution; under
skew it postpones cold segments indefinitely, letting them pin nearly
full segments of never-overwritten data (paper Section 6.2.1, citing the
original LFS observation [23]).
"""

from __future__ import annotations

import numpy as np

from repro.core.priority import greedy_priority
from repro.policies.base import CleaningPolicy


class GreedyPolicy(CleaningPolicy):
    """Clean by descending available space."""

    name = "greedy"
    #: Available space is a pure column function; priorities cache until
    #: a segment's epoch moves.
    clock_dependent_rank = False

    def rank_columns(self, segs, ids: np.ndarray) -> np.ndarray:
        return greedy_priority(segs.capacity - segs.live_units[ids])

    def decision_columns(self, segs, ids: np.ndarray) -> dict:
        columns = super().decision_columns(segs, ids)
        columns["emptiness"] = columns["A"] / segs.capacity
        return columns
