"""Greedy cleaning.

Always clean the segment with the most available (reclaimable) space —
the highest ``E``.  Optimal under a uniform update distribution; under
skew it postpones cold segments indefinitely, letting them pin nearly
full segments of never-overwritten data (paper Section 6.2.1, citing the
original LFS observation [23]).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.priority import greedy_priority
from repro.policies.base import CleaningPolicy


class GreedyPolicy(CleaningPolicy):
    """Clean by descending available space."""

    name = "greedy"

    def rank(self, candidates: Sequence[int]) -> np.ndarray:
        segs = self.store.segments
        capacity = segs.capacity
        live_units = segs.live_units
        return greedy_priority([capacity - live_units[s] for s in candidates])
