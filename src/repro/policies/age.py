"""Age-based cleaning (paper Section 2.2).

Always clean the oldest segment — the one written longest ago.  This is
the circular-buffer cleaner: it is optimal under a uniform update
distribution (where the oldest segment is, with high probability, also
the emptiest) and very poor under skew, because it repeatedly relocates
cold data that was never going to be overwritten.
"""

from __future__ import annotations

import numpy as np

from repro.core.priority import age_priority
from repro.policies.base import CleaningPolicy


class AgePolicy(CleaningPolicy):
    """Clean strictly in seal-time order."""

    name = "age"
    #: Seal time is fixed once sealed; priorities cache until the
    #: segment's epoch moves (reset / re-seal).
    clock_dependent_rank = False

    def rank_columns(self, segs, ids: np.ndarray) -> np.ndarray:
        return age_priority(segs.seal_time[ids])

    def decision_columns(self, segs, ids: np.ndarray) -> dict:
        columns = super().decision_columns(segs, ids)
        columns["seal_time"] = segs.seal_time[ids].astype(np.float64)
        return columns
