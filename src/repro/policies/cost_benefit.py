"""Cost-benefit cleaning (Rosenblum & Ousterhout's LFS cleaner [23]).

The classic heuristic for skewed workloads: weigh the space reclaimed by
cleaning a segment against the cost of cleaning it, and boost old (cold)
segments so they are cleaned more aggressively than a pure greedy order
would::

    benefit / cost = (E * age) / (2 - E)

where ``E`` is the empty fraction and ``age`` the time since the segment
was sealed (in update ticks — the same clock the rest of the system
uses).  The paper's Section 6.1.3 prints the formula as
``(1 - E) * age / E``, which is the same expression with ``E`` read as
*utilization*; :class:`CostBenefitPaperPolicy` implements that literal
reading so the difference is measurable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.priority import cost_benefit_paper_priority, cost_benefit_priority
from repro.policies.base import CleaningPolicy


class CostBenefitPolicy(CleaningPolicy):
    """Clean by descending ``(E * age) / (2 - E)``."""

    name = "cost-benefit"

    def rank(self, candidates: Sequence[int]) -> np.ndarray:
        segs = self.store.segments
        clock = self.store.clock
        capacity = segs.capacity
        live_units = segs.live_units
        seal_time = segs.seal_time
        avail = [capacity - live_units[s] for s in candidates]
        age = [clock - seal_time[s] for s in candidates]
        return cost_benefit_priority(avail, capacity, age)


class CostBenefitPaperPolicy(CleaningPolicy):
    """The formula exactly as printed in the paper: ``(1 - E) * age / E``
    with ``E`` the empty fraction (prefers *fuller* segments)."""

    name = "cost-benefit-paper"

    def rank(self, candidates: Sequence[int]) -> np.ndarray:
        segs = self.store.segments
        clock = self.store.clock
        capacity = segs.capacity
        live_units = segs.live_units
        seal_time = segs.seal_time
        avail = [capacity - live_units[s] for s in candidates]
        age = [clock - seal_time[s] for s in candidates]
        return cost_benefit_paper_priority(avail, capacity, age)
