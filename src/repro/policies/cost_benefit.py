"""Cost-benefit cleaning (Rosenblum & Ousterhout's LFS cleaner [23]).

The classic heuristic for skewed workloads: weigh the space reclaimed by
cleaning a segment against the cost of cleaning it, and boost old (cold)
segments so they are cleaned more aggressively than a pure greedy order
would::

    benefit / cost = (E * age) / (2 - E)

where ``E`` is the empty fraction and ``age`` the time since the segment
was sealed (in update ticks — the same clock the rest of the system
uses).  The paper's Section 6.1.3 prints the formula as
``(1 - E) * age / E``, which is the same expression with ``E`` read as
*utilization*; :class:`CostBenefitPaperPolicy` implements that literal
reading so the difference is measurable.
"""

from __future__ import annotations

import numpy as np

from repro.core.priority import cost_benefit_paper_priority, cost_benefit_priority
from repro.policies.base import CleaningPolicy


class CostBenefitPolicy(CleaningPolicy):
    """Clean by descending ``(E * age) / (2 - E)``."""

    name = "cost-benefit"
    #: ``age`` moves with the clock every cycle — nothing to cache.
    clock_dependent_rank = True

    def rank_columns(self, segs, ids: np.ndarray) -> np.ndarray:
        capacity = segs.capacity
        avail = capacity - segs.live_units[ids]
        age = self.store.clock - segs.seal_time[ids]
        return cost_benefit_priority(avail, capacity, age)

    def decision_columns(self, segs, ids: np.ndarray) -> dict:
        columns = super().decision_columns(segs, ids)
        columns["age"] = (self.store.clock - segs.seal_time[ids]).astype(
            np.float64
        )
        # The priority is the negated benefit/cost ratio.
        columns["benefit"] = -columns["score"]
        return columns


class CostBenefitPaperPolicy(CleaningPolicy):
    """The formula exactly as printed in the paper: ``(1 - E) * age / E``
    with ``E`` the empty fraction (prefers *fuller* segments)."""

    name = "cost-benefit-paper"
    clock_dependent_rank = True

    def rank_columns(self, segs, ids: np.ndarray) -> np.ndarray:
        capacity = segs.capacity
        avail = capacity - segs.live_units[ids]
        age = self.store.clock - segs.seal_time[ids]
        return cost_benefit_paper_priority(avail, capacity, age)

    def decision_columns(self, segs, ids: np.ndarray) -> dict:
        columns = super().decision_columns(segs, ids)
        columns["age"] = (self.store.clock - segs.seal_time[ids]).astype(
            np.float64
        )
        columns["benefit"] = -columns["score"]
        return columns
