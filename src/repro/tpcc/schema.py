"""TPC-C schema: the nine tables, their key shapes and row widths.

Rows are stored as plain tuples (the engine never serializes contents);
what matters to the storage engine — and therefore to the page-write
trace — is each table's *encoded row width*, which determines leaf
fanout and hence how many rows share a page.  The widths below follow
the TPC-C specification's per-table row sizes.

Field order of each row tuple is documented next to its builder in
:mod:`repro.tpcc.loader` / :mod:`repro.tpcc.transactions`.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

#: Approximate encoded row widths (bytes), per the TPC-C spec.
ROW_BYTES = {
    "warehouse": 89,
    "district": 95,
    "customer": 655,
    "history": 46,
    "new_order": 8,
    "order": 24,
    "order_line": 54,
    "item": 82,
    "stock": 306,
}

#: Encoded key widths (composite integer keys).
KEY_BYTES = {
    "warehouse": 8,
    "district": 10,
    "customer": 12,
    "customer_by_name": 34,  # includes the padded last/first name
    "history": 16,
    "new_order": 14,
    "order": 14,
    "order_by_customer": 16,
    "order_line": 16,
    "item": 8,
    "stock": 12,
}

#: Secondary indexes: key width only; payload is the primary key.
INDEX_PAYLOAD_BYTES = 12


@dataclasses.dataclass(frozen=True)
class TpccScale:
    """Cardinalities, scalable below spec size for fast experiments.

    The TPC-C spec fixes ``items = 100_000``, ``districts = 10``,
    ``customers_per_district = 3_000``, ``initial_orders_per_district =
    3_000``; the defaults here are a 1/10-ish scale that preserves the
    table-size *ratios* (and therefore the hot/cold page structure).
    """

    warehouses: int = 1
    districts_per_warehouse: int = 10
    customers_per_district: int = 300
    initial_orders_per_district: int = 300
    items: int = 10_000

    def __post_init__(self) -> None:
        if self.warehouses < 1:
            raise ValueError("warehouses must be >= 1")
        if self.districts_per_warehouse < 1:
            raise ValueError("districts_per_warehouse must be >= 1")
        if self.customers_per_district < 3:
            raise ValueError("customers_per_district must be >= 3")
        if self.initial_orders_per_district > self.customers_per_district:
            raise ValueError("initial orders cannot exceed customers")
        if self.items < 10:
            raise ValueError("items must be >= 10")

    @classmethod
    def spec(cls, warehouses: int = 1) -> "TpccScale":
        """Full specification cardinalities."""
        return cls(
            warehouses=warehouses,
            districts_per_warehouse=10,
            customers_per_district=3000,
            initial_orders_per_district=3000,
            items=100_000,
        )

    def approximate_rows(self) -> int:
        """Total initial row count across all tables."""
        w = self.warehouses
        d = w * self.districts_per_warehouse
        c = d * self.customers_per_district
        o = d * self.initial_orders_per_district
        return (
            w                  # warehouse
            + d                # district
            + c                # customer
            + c                # history (one per customer)
            + o                # order
            + o * 10           # ~10 order lines per order
            + o // 3           # last third are new orders
            + self.items       # item
            + w * self.items   # stock
        )


#: The five transaction types with the standard mix weights
#: (TPC-C clause 5.2.4).
TRANSACTION_MIX: Tuple[Tuple[str, float], ...] = (
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
)
