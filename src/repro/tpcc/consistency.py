"""TPC-C consistency conditions (spec clause 3.3.2).

The spec defines database-wide invariants that must hold after any mix
of transactions; they are the strongest correctness oracle available
for a TPC-C implementation.  Implemented here:

1. ``W_YTD = sum(D_YTD)`` for every warehouse (condition 1);
2. ``D_NEXT_O_ID - 1 = max(O_ID) = max(NO_O_ID)`` per district
   (condition 2, with the NEW-ORDER clause applying only to non-empty
   queues);
3. NEW-ORDER rows form a contiguous O_ID range per district
   (condition 3);
4. ``sum(O_OL_CNT) = count(ORDER-LINE)`` per district (condition 4);
5. every NEW-ORDER row has exactly one ORDER row (condition 5's
   existence half);
6. every ORDER's O_OL_CNT matches its actual ORDER-LINE rows
   (condition 6).
"""

from __future__ import annotations

from typing import List

from repro.tpcc.database import TpccDatabase
from repro.tpcc.schema import TpccScale


class ConsistencyViolation(AssertionError):
    """A TPC-C consistency condition failed."""


def check_consistency(db: TpccDatabase, scale: TpccScale) -> List[str]:
    """Verify conditions 1-6; returns the list of checks performed.

    Raises :class:`ConsistencyViolation` on the first failure.
    """
    performed = []
    for w_id in range(1, scale.warehouses + 1):
        _condition_1(db, scale, w_id)
        performed.append("W%d: W_YTD = sum(D_YTD)" % w_id)
        for d_id in range(1, scale.districts_per_warehouse + 1):
            _conditions_2_and_3(db, w_id, d_id)
            _condition_4(db, w_id, d_id)
            _conditions_5_and_6(db, w_id, d_id)
        performed.append("W%d: per-district order-id and order-line checks" % w_id)
    return performed


def _fail(condition: int, detail: str) -> None:
    raise ConsistencyViolation("TPC-C consistency %d violated: %s" % (condition, detail))


def _condition_1(db: TpccDatabase, scale: TpccScale, w_id: int) -> None:
    w_ytd = db.warehouse.search((w_id,))[1]
    d_ytd = sum(
        db.district.search((w_id, d_id))[1]
        for d_id in range(1, scale.districts_per_warehouse + 1)
    )
    if abs(w_ytd - d_ytd) > 1e-6 * max(1.0, abs(w_ytd)):
        _fail(1, "W%d: W_YTD=%.2f, sum(D_YTD)=%.2f" % (w_id, w_ytd, d_ytd))


def _conditions_2_and_3(db: TpccDatabase, w_id: int, d_id: int) -> None:
    next_o_id = db.district.search((w_id, d_id))[2]
    order_ids = [key[2] for key, _ in db.order.scan_prefix((w_id, d_id))]
    if order_ids and max(order_ids) != next_o_id - 1:
        _fail(
            2,
            "district (%d,%d): D_NEXT_O_ID-1=%d but max(O_ID)=%d"
            % (w_id, d_id, next_o_id - 1, max(order_ids)),
        )
    queue = [key[2] for key, _ in db.new_order.scan_prefix((w_id, d_id))]
    if queue:
        if max(queue) != next_o_id - 1:
            _fail(
                2,
                "district (%d,%d): max(NO_O_ID)=%d != D_NEXT_O_ID-1=%d"
                % (w_id, d_id, max(queue), next_o_id - 1),
            )
        if max(queue) - min(queue) + 1 != len(queue):
            _fail(
                3,
                "district (%d,%d): NEW-ORDER ids not contiguous "
                "(min=%d max=%d count=%d)"
                % (w_id, d_id, min(queue), max(queue), len(queue)),
            )


def _condition_4(db: TpccDatabase, w_id: int, d_id: int) -> None:
    declared = sum(
        row[3] for _, row in db.order.scan_prefix((w_id, d_id))
    )
    actual = sum(1 for _ in db.order_line.scan_prefix((w_id, d_id)))
    if declared != actual:
        _fail(
            4,
            "district (%d,%d): sum(O_OL_CNT)=%d, order-line rows=%d"
            % (w_id, d_id, declared, actual),
        )


def _conditions_5_and_6(db: TpccDatabase, w_id: int, d_id: int) -> None:
    for key, _ in db.new_order.scan_prefix((w_id, d_id)):
        order = db.order.search(key)
        if order is None:
            _fail(5, "NEW-ORDER %r has no ORDER row" % (key,))
        if order[2] != 0:
            _fail(5, "queued order %r already has a carrier" % (key,))
    for key, order in db.order.scan_prefix((w_id, d_id)):
        lines = sum(1 for _ in db.order_line.scan_prefix(key))
        if lines != order[3]:
            _fail(
                6,
                "order %r declares %d lines but has %d" % (key, order[3], lines),
            )
