"""The TPC-C database: nine tables plus two secondary indexes, all as
B+-trees sharing one buffer pool.

Key shapes (all-integer composites except the name index):

* ``warehouse``         (w_id,)
* ``district``          (w_id, d_id)
* ``customer``          (w_id, d_id, c_id)
* ``customer_by_name``  (w_id, d_id, c_last, c_first, c_id) -> c_id
* ``history``           (w_id, d_id, c_id, seq)
* ``order``             (w_id, d_id, o_id)
* ``order_by_customer`` (w_id, d_id, c_id, o_id) -> o_id
* ``new_order``         (w_id, d_id, o_id)
* ``order_line``        (w_id, d_id, o_id, number)
* ``item``              (i_id,)
* ``stock``             (w_id, i_id)
"""

from __future__ import annotations

from typing import Optional

from repro.btree import BPlusTree, BufferPool
from repro.tpcc.schema import INDEX_PAYLOAD_BYTES, KEY_BYTES, ROW_BYTES
from repro.workloads.trace import TraceRecorder


class TpccDatabase:
    """All tables of one TPC-C instance."""

    TABLES = (
        "warehouse", "district", "customer", "history",
        "order", "new_order", "order_line", "item", "stock",
    )

    def __init__(
        self,
        pool_pages: int,
        recorder: Optional[TraceRecorder] = None,
        serialize: bool = False,
    ) -> None:
        self.pool = BufferPool(pool_pages, recorder=recorder, serialize=serialize)
        self.warehouse = self._table("warehouse")
        self.district = self._table("district")
        self.customer = self._table("customer")
        self.customer_by_name = BPlusTree(
            self.pool,
            key_bytes=KEY_BYTES["customer_by_name"],
            value_bytes=INDEX_PAYLOAD_BYTES,
            name="customer_by_name",
        )
        self.history = self._table("history")
        self.order = self._table("order")
        self.order_by_customer = BPlusTree(
            self.pool,
            key_bytes=KEY_BYTES["order_by_customer"],
            value_bytes=INDEX_PAYLOAD_BYTES,
            name="order_by_customer",
        )
        self.new_order = self._table("new_order")
        self.order_line = self._table("order_line")
        self.item = self._table("item")
        self.stock = self._table("stock")
        #: Monotonic history sequence (history has no natural key).
        self.history_seq = 0

    def _table(self, name: str) -> BPlusTree:
        return BPlusTree(
            self.pool,
            key_bytes=KEY_BYTES[name],
            value_bytes=ROW_BYTES[name],
            name=name,
        )

    def next_history_seq(self) -> int:
        """Allocate the next HISTORY surrogate key."""
        self.history_seq += 1
        return self.history_seq

    @property
    def footprint_pages(self) -> int:
        """Total pages ever allocated across all trees — the storage
        footprint that drives the fill factor."""
        return self.pool.allocated_pages

    def checkpoint(self) -> int:
        """Flush all dirty pages; returns pages written."""
        return self.pool.checkpoint()

    def table_sizes(self) -> dict:
        """Row count per table (diagnostics)."""
        return {
            name: len(getattr(self, name))
            for name in self.TABLES
        }

    def __repr__(self) -> str:
        return "<TpccDatabase %d pages, %s>" % (
            self.footprint_pages,
            ", ".join("%s=%d" % kv for kv in sorted(self.table_sizes().items())),
        )
