"""TPC-C benchmark implementation over the B+-tree engine.

Used to synthesize the I/O traces of the paper's Section 6.3 TPC-C
experiment (the original traces are not published).
"""

from repro.tpcc.consistency import ConsistencyViolation, check_consistency
from repro.tpcc.database import TpccDatabase
from repro.tpcc.driver import DriverStats, TpccDriver
from repro.tpcc.loader import load_database
from repro.tpcc.random_gen import TpccRandom
from repro.tpcc.schema import ROW_BYTES, TRANSACTION_MIX, TpccScale
from repro.tpcc.trace_gen import TpccTrace, generate_tpcc_trace
from repro.tpcc.transactions import (
    TRANSACTIONS,
    delivery,
    new_order,
    order_status,
    payment,
    stock_level,
)

__all__ = [
    "ConsistencyViolation",
    "DriverStats",
    "check_consistency",
    "ROW_BYTES",
    "TRANSACTIONS",
    "TRANSACTION_MIX",
    "TpccDatabase",
    "TpccDriver",
    "TpccRandom",
    "TpccScale",
    "TpccTrace",
    "delivery",
    "generate_tpcc_trace",
    "load_database",
    "new_order",
    "order_status",
    "payment",
    "stock_level",
]
