"""TPC-C random input generation (spec clause 2.1.6 and 4.3.2).

The signature piece is NURand — the non-uniform distribution used for
customer and item selection — which is what gives TPC-C its skewed,
roughly 80-20 page access pattern (the property the paper's Section 6.3
relies on).
"""

from __future__ import annotations

import random
from typing import Sequence

#: Clause 4.3.2.3 last-name syllables.
LAST_NAME_SYLLABLES = (
    "BAR", "OUGHT", "ABLE", "PRI", "PRES",
    "ESE", "ANTI", "CALLY", "ATION", "EING",
)

#: NURand constants from clause 2.1.6.1.
NURAND_A_CUSTOMER_ID = 1023
NURAND_A_ITEM_ID = 8191
NURAND_A_LAST_NAME = 255


class TpccRandom:
    """Seeded source of all TPC-C random inputs."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        # The spec's per-run constant C for each NURand variant.
        self._c_customer = self._rng.randint(0, NURAND_A_CUSTOMER_ID)
        self._c_item = self._rng.randint(0, NURAND_A_ITEM_ID)
        self._c_last = self._rng.randint(0, NURAND_A_LAST_NAME)

    def uniform(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def nurand(self, a: int, x: int, y: int, c: int) -> int:
        """Clause 2.1.6: ``(((rand(0,A) | rand(x,y)) + C) % (y-x+1)) + x``."""
        return (
            ((self._rng.randint(0, a) | self._rng.randint(x, y)) + c)
            % (y - x + 1)
        ) + x

    def customer_id(self, n_customers: int) -> int:
        """Non-uniform customer id in [1, n_customers]."""
        return self.nurand(NURAND_A_CUSTOMER_ID, 1, n_customers, self._c_customer)

    def item_id(self, n_items: int) -> int:
        """Non-uniform item id in [1, n_items]."""
        return self.nurand(NURAND_A_ITEM_ID, 1, n_items, self._c_item)

    def last_name(self, max_index: int = 999) -> str:
        """A syllable-composed last name for a NURand(255) index."""
        num = self.nurand(NURAND_A_LAST_NAME, 0, max_index, self._c_last)
        return self.last_name_for(num)

    @staticmethod
    def last_name_for(num: int) -> str:
        """Deterministic name for an index (used by the loader)."""
        return (
            LAST_NAME_SYLLABLES[(num // 100) % 10]
            + LAST_NAME_SYLLABLES[(num // 10) % 10]
            + LAST_NAME_SYLLABLES[num % 10]
        )

    def alnum_string(self, low: int, high: int) -> str:
        """Random alphanumeric string of length in [low, high]."""
        length = self._rng.randint(low, high)
        return "".join(
            self._rng.choice("ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789")
            for _ in range(length)
        )

    def amount(self, low: float, high: float) -> float:
        """A money amount with two decimals."""
        return round(self._rng.uniform(low, high), 2)

    def choice(self, seq: Sequence):
        """Uniform choice from a sequence."""
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(seq)
