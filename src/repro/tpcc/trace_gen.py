"""The paper's TPC-C trace pipeline (Section 6.3).

Procedure, mirroring the paper: load the tables, size the simulated
device so the loaded footprint sits at the target fill factor, then run
the benchmark "until the fill factor increased by 0.1", collecting the
buffer pool's page-write trace of the running phase.  The trace is then
replayed through the cleaning simulator by ``benchmarks/bench_fig6.py``.

The paper varies the TPC-C scale factor (350-560 warehouses on a 100 GB
device) to hit fill factors 0.5-0.8; we keep the scale fixed and size
the device instead — the same ratio, reachable at laptop scale.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.store import StoreConfig
from repro.tpcc.database import TpccDatabase
from repro.tpcc.driver import TpccDriver
from repro.tpcc.loader import load_database
from repro.tpcc.random_gen import TpccRandom
from repro.tpcc.schema import TpccScale
from repro.workloads.trace import TraceRecorder, TraceWorkload


@dataclasses.dataclass(frozen=True)
class TpccTrace:
    """A generated trace plus the context needed to replay it."""

    workload: TraceWorkload
    initial_fill: float
    final_fill: float
    device_pages: int
    footprint_pages: int
    transactions: int

    def store_config(
        self,
        segment_units: int = 64,
        clean_trigger: Optional[int] = None,
        clean_batch: Optional[int] = None,
        sort_buffer_segments: int = 0,
    ) -> StoreConfig:
        """A simulator config whose device matches this trace's sizing.

        The cleaning trigger/batch scale with the segment count (the
        paper's 32/64 out of 51,200 segments) so small traces do not
        drown in reserve overhead.
        """
        n_segments = max(16, self.device_pages // segment_units)
        if clean_trigger is None:
            clean_trigger = max(2, n_segments // 128)
        if clean_batch is None:
            clean_batch = 2 * clean_trigger
        return StoreConfig(
            n_segments=n_segments,
            segment_units=segment_units,
            fill_factor=min(0.99, self.final_fill),
            clean_trigger=clean_trigger,
            clean_batch=clean_batch,
            sort_buffer_segments=sort_buffer_segments,
        )


def generate_tpcc_trace(
    fill_factor: float,
    scale: Optional[TpccScale] = None,
    pool_fraction: float = 0.25,
    fill_growth: float = 0.1,
    checkpoint_every: int = 500,
    max_transactions: int = 2_000_000,
    seed: int = 0,
) -> TpccTrace:
    """Generate a TPC-C page-write trace at a target starting fill.

    Args:
        fill_factor: Device fill when the run starts (the paper's 0.5,
            0.6, 0.7, 0.8 points).
        scale: Table cardinalities (default: the scaled-down
            :class:`TpccScale` defaults).
        pool_fraction: Buffer-pool size as a fraction of the loaded
            footprint (the paper's 4 GB cache vs ~100 GB+ of data; a
            quarter keeps hot pages cached and cold pages spilling).
        fill_growth: Stop once the fill factor grew this much.
        checkpoint_every: Transactions between fuzzy checkpoints.
        max_transactions: Hard stop (guards tiny growth rates).
        seed: Random seed for loader and driver.
    """
    if not 0.0 < fill_factor < 0.95:
        raise ValueError("fill_factor must be in (0, 0.95)")
    scale = scale if scale is not None else TpccScale()
    rng = TpccRandom(seed)
    recorder = TraceRecorder()
    # Pool sized after load: start generous, then clamp.
    db = TpccDatabase(pool_pages=1 << 22, recorder=recorder)
    load_database(db, scale, rng, checkpoint=True)
    footprint = db.footprint_pages
    # Shrink the pool to its working size: move everything "to disk"
    # first so the cache refills with genuinely hot pages.
    db.pool.flush_all()
    db.pool.capacity = max(8, int(footprint * pool_fraction))
    # Discard the load-phase writes: the paper measures the running
    # phase only.
    recorder.to_array()
    db.pool.recorder = recorder = TraceRecorder()

    device_pages = int(footprint / fill_factor)
    target_fill = fill_factor + fill_growth
    driver = TpccDriver(db, scale, rng, checkpoint_every=checkpoint_every)
    transactions = 0
    while transactions < max_transactions:
        driver.run(100)
        transactions += 100
        if db.footprint_pages / device_pages >= target_fill:
            break
    db.checkpoint()
    final_fill = db.footprint_pages / device_pages
    return TpccTrace(
        workload=TraceWorkload(recorder.to_array()),
        initial_fill=fill_factor,
        final_fill=final_fill,
        device_pages=device_pages,
        footprint_pages=db.footprint_pages,
        transactions=transactions,
    )
