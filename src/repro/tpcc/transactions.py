"""The five TPC-C transactions (spec clause 2.4-2.8), executed directly
against the B+-tree tables.

Each function returns ``True`` on commit and ``False`` on the specified
rollback path (1 % of New-Order transactions roll back on an unused
item id).  There is no concurrency: the driver is a single stream, which
is all the I/O trace needs.
"""

from __future__ import annotations

from typing import Optional

from repro.tpcc.database import TpccDatabase
from repro.tpcc.random_gen import TpccRandom
from repro.tpcc.schema import TpccScale


def _pick_customer(
    db: TpccDatabase,
    rng: TpccRandom,
    scale: TpccScale,
    w_id: int,
    d_id: int,
) -> int:
    """60 % of lookups go by last name (pick the median match, per
    spec), 40 % by customer id."""
    n = scale.customers_per_district
    if rng.random() < 0.6:
        last = rng.last_name(min(999, n - 1))
        matches = [
            c_id
            for _, c_id in db.customer_by_name.scan_prefix((w_id, d_id, last))
        ]
        if matches:
            return matches[len(matches) // 2]
        # A scaled-down population may miss some names; fall through.
    return rng.customer_id(n)


def new_order(
    db: TpccDatabase, rng: TpccRandom, scale: TpccScale, w_id: int
) -> bool:
    """Clause 2.4: enter an order with 5-15 lines, updating stock."""
    d_id = rng.uniform(1, scale.districts_per_warehouse)
    c_id = rng.customer_id(scale.customers_per_district)
    ol_cnt = rng.uniform(5, 15)
    rollback = rng.uniform(1, 100) == 1

    # Reads: warehouse tax, district (and its order counter), customer.
    assert db.warehouse.search((w_id,)) is not None
    d_key = (w_id, d_id)
    district = db.district.search(d_key)
    o_id = district[2]
    assert db.customer.search((w_id, d_id, c_id)) is not None

    lines = []
    for number in range(1, ol_cnt + 1):
        if rollback and number == ol_cnt:
            return False  # unused item id -> whole transaction rolls back
        i_id = rng.item_id(scale.items)
        supply_w = w_id
        if scale.warehouses > 1 and rng.random() < 0.01:
            while True:
                supply_w = rng.uniform(1, scale.warehouses)
                if supply_w != w_id:
                    break
        item = db.item.search((i_id,))
        stock_key = (supply_w, i_id)
        stock = db.stock.search(stock_key)
        quantity = rng.uniform(1, 10)
        new_qty = stock[0] - quantity
        if new_qty < 10:
            new_qty += 91
        remote = 0 if supply_w == w_id else 1
        db.stock.update(
            stock_key,
            (new_qty, stock[1] + quantity, stock[2] + 1, stock[3] + remote, stock[4]),
        )
        lines.append((number, i_id, supply_w, quantity, quantity * item[1]))

    db.district.update(d_key, (district[0], district[1], o_id + 1))
    all_local = int(all(line[2] == w_id for line in lines))
    db.order.insert((w_id, d_id, o_id), (c_id, o_id, 0, len(lines), all_local))
    db.order_by_customer.insert((w_id, d_id, c_id, o_id), o_id)
    db.new_order.insert((w_id, d_id, o_id), ())
    for number, i_id, supply_w, quantity, amount in lines:
        db.order_line.insert(
            (w_id, d_id, o_id, number),
            (i_id, supply_w, 0, quantity, amount, ""),
        )
    return True


def payment(
    db: TpccDatabase, rng: TpccRandom, scale: TpccScale, w_id: int
) -> bool:
    """Clause 2.5: pay against a customer, updating W/D/C ytd and
    appending history."""
    d_id = rng.uniform(1, scale.districts_per_warehouse)
    amount = rng.amount(1.0, 5000.0)

    # 15 % of payments are for a remote customer (when possible).
    c_w, c_d = w_id, d_id
    if scale.warehouses > 1 and rng.random() < 0.15:
        while True:
            c_w = rng.uniform(1, scale.warehouses)
            if c_w != w_id:
                break
        c_d = rng.uniform(1, scale.districts_per_warehouse)
    c_id = _pick_customer(db, rng, scale, c_w, c_d)

    wh = db.warehouse.search((w_id,))
    db.warehouse.update((w_id,), (wh[0], wh[1] + amount))
    district = db.district.search((w_id, d_id))
    db.district.update((w_id, d_id), (district[0], district[1] + amount, district[2]))
    c_key = (c_w, c_d, c_id)
    cust = db.customer.search(c_key)
    data = cust[7]
    if cust[6] == "BC":  # bad credit: prepend payment info to c_data
        data = ("%d,%d,%d,%.2f|" % (c_id, c_d, c_w, amount) + data)[:500]
    db.customer.update(
        c_key,
        (cust[0], cust[1], cust[2] - amount, cust[3] + amount,
         cust[4] + 1, cust[5], cust[6], data),
    )
    db.history.insert(
        (c_w, c_d, c_id, db.next_history_seq()), (amount, "payment")
    )
    return True


def order_status(
    db: TpccDatabase, rng: TpccRandom, scale: TpccScale, w_id: int
) -> bool:
    """Clause 2.6 (read only): a customer's most recent order and its
    lines."""
    d_id = rng.uniform(1, scale.districts_per_warehouse)
    c_id = _pick_customer(db, rng, scale, w_id, d_id)
    db.customer.search((w_id, d_id, c_id))
    last = db.order_by_customer.last_key_with_prefix((w_id, d_id, c_id))
    if last is None:
        return True  # customer has no orders yet
    o_id = last[3]
    order = db.order.search((w_id, d_id, o_id))
    assert order is not None
    for _ in db.order_line.scan_prefix((w_id, d_id, o_id)):
        pass
    return True


def delivery(
    db: TpccDatabase, rng: TpccRandom, scale: TpccScale, w_id: int
) -> bool:
    """Clause 2.7: deliver the oldest undelivered order of every
    district — the queue consumer that makes old pages go cold."""
    carrier = rng.uniform(1, 10)
    for d_id in range(1, scale.districts_per_warehouse + 1):
        oldest: Optional[tuple] = None
        for key, _ in db.new_order.scan_prefix((w_id, d_id)):
            oldest = key
            break
        if oldest is None:
            continue  # district queue empty; skip, per spec
        o_id = oldest[2]
        db.new_order.delete(oldest)
        o_key = (w_id, d_id, o_id)
        order = db.order.search(o_key)
        db.order.update(o_key, (order[0], order[1], carrier, order[3], order[4]))
        c_id = order[0]
        total = 0.0
        for ol_key, line in list(db.order_line.scan_prefix((w_id, d_id, o_id))):
            total += line[4]
            db.order_line.update(
                ol_key, (line[0], line[1], db.history_seq, line[3], line[4], line[5])
            )
        c_key = (w_id, d_id, c_id)
        cust = db.customer.search(c_key)
        db.customer.update(
            c_key,
            (cust[0], cust[1], cust[2] + total, cust[3],
             cust[4], cust[5] + 1, cust[6], cust[7]),
        )
    return True


def stock_level(
    db: TpccDatabase, rng: TpccRandom, scale: TpccScale, w_id: int
) -> bool:
    """Clause 2.8 (read only): count recently-sold items below a stock
    threshold."""
    d_id = rng.uniform(1, scale.districts_per_warehouse)
    threshold = rng.uniform(10, 20)
    district = db.district.search((w_id, d_id))
    next_o_id = district[2]
    seen = set()
    for o_id in range(max(1, next_o_id - 20), next_o_id):
        for _, line in db.order_line.scan_prefix((w_id, d_id, o_id)):
            seen.add(line[0])
    low = 0
    for i_id in seen:
        stock = db.stock.search((w_id, i_id))
        if stock is not None and stock[0] < threshold:
            low += 1
    return True


TRANSACTIONS = {
    "new_order": new_order,
    "payment": payment,
    "order_status": order_status,
    "delivery": delivery,
    "stock_level": stock_level,
}
