"""TPC-C initial population (spec clause 4.3.3, scaled).

Row tuples (field order):

* warehouse:  (name, ytd)
* district:   (name, ytd, next_o_id)
* customer:   (first, last, balance, ytd_payment, payment_cnt,
               delivery_cnt, credit, data)
* history:    (amount, data)
* order:      (c_id, entry_d, carrier_id, ol_cnt, all_local)
* new_order:  ()
* order_line: (i_id, supply_w_id, delivery_d, quantity, amount, dist_info)
* item:       (name, price, data)
* stock:      (quantity, ytd, order_cnt, remote_cnt, data)
"""

from __future__ import annotations

from repro.tpcc.database import TpccDatabase
from repro.tpcc.random_gen import TpccRandom
from repro.tpcc.schema import TpccScale


def load_database(
    db: TpccDatabase, scale: TpccScale, rng: TpccRandom, checkpoint: bool = True
) -> None:
    """Populate all tables; optionally checkpoint at the end so the load
    phase's dirty pages do not bleed into the measured trace."""
    _load_items(db, scale, rng)
    for w_id in range(1, scale.warehouses + 1):
        _load_warehouse(db, scale, rng, w_id)
    if checkpoint:
        db.checkpoint()


def _load_items(db: TpccDatabase, scale: TpccScale, rng: TpccRandom) -> None:
    for i_id in range(1, scale.items + 1):
        db.item.insert(
            (i_id,),
            (rng.alnum_string(14, 24), rng.amount(1.0, 100.0), rng.alnum_string(26, 50)),
        )


def _load_warehouse(
    db: TpccDatabase, scale: TpccScale, rng: TpccRandom, w_id: int
) -> None:
    # Spec: W_YTD = 300,000 = 10 districts x 30,000; scaled district
    # counts must keep consistency condition 1 (W_YTD = sum(D_YTD)).
    w_ytd = 30_000.0 * scale.districts_per_warehouse
    db.warehouse.insert((w_id,), (rng.alnum_string(6, 10), w_ytd))
    for i_id in range(1, scale.items + 1):
        db.stock.insert(
            (w_id, i_id),
            (rng.uniform(10, 100), 0, 0, 0, rng.alnum_string(26, 50)),
        )
    for d_id in range(1, scale.districts_per_warehouse + 1):
        _load_district(db, scale, rng, w_id, d_id)


def _load_district(
    db: TpccDatabase, scale: TpccScale, rng: TpccRandom, w_id: int, d_id: int
) -> None:
    n_customers = scale.customers_per_district
    n_orders = scale.initial_orders_per_district
    db.district.insert(
        (w_id, d_id), (rng.alnum_string(6, 10), 30_000.0, n_orders + 1)
    )
    for c_id in range(1, n_customers + 1):
        # Spec: first 1000 customers get sequential last names; the rest
        # are NURand-distributed.  Scaled populations use the same rule.
        if c_id <= min(1000, n_customers):
            last = TpccRandom.last_name_for(c_id - 1)
        else:
            last = rng.last_name()
        first = rng.alnum_string(8, 16)
        credit = "BC" if rng.random() < 0.1 else "GC"
        db.customer.insert(
            (w_id, d_id, c_id),
            (first, last, -10.0, 10.0, 1, 0, credit, rng.alnum_string(50, 100)),
        )
        db.customer_by_name.insert((w_id, d_id, last, first, c_id), c_id)
        db.history.insert(
            (w_id, d_id, c_id, db.next_history_seq()),
            (10.0, rng.alnum_string(12, 24)),
        )
    # Initial orders: one per customer (in permuted customer order, per
    # spec), the last third of which are still undelivered (NEW-ORDER).
    customers = list(range(1, n_orders + 1))
    rng.shuffle(customers)
    undelivered_from = n_orders - n_orders // 3 + 1
    for o_id, c_id in enumerate(customers, start=1):
        ol_cnt = rng.uniform(5, 15)
        delivered = o_id < undelivered_from
        carrier = rng.uniform(1, 10) if delivered else 0
        db.order.insert(
            (w_id, d_id, o_id), (c_id, o_id, carrier, ol_cnt, 1)
        )
        db.order_by_customer.insert((w_id, d_id, c_id, o_id), o_id)
        for number in range(1, ol_cnt + 1):
            i_id = rng.uniform(1, scale.items)
            amount = 0.0 if delivered else rng.amount(0.01, 9999.99)
            delivery_d = o_id if delivered else 0
            db.order_line.insert(
                (w_id, d_id, o_id, number),
                (i_id, w_id, delivery_d, 5, amount, rng.alnum_string(24, 24)),
            )
        if not delivered:
            db.new_order.insert((w_id, d_id, o_id), ())
