"""TPC-C workload driver: the standard transaction mix against one
database, with per-type counters and periodic checkpointing.

Checkpointing matters for trace realism: with only LRU eviction, pages
hotter than the cache never reach disk at all.  Real engines flush dirty
pages periodically (fuzzy checkpoints), which is what puts the hot
B+-tree pages — district counters, NEW-ORDER queue heads — into the
write trace over and over.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.tpcc.database import TpccDatabase
from repro.tpcc.random_gen import TpccRandom
from repro.tpcc.schema import TRANSACTION_MIX, TpccScale
from repro.tpcc.transactions import TRANSACTIONS


@dataclasses.dataclass
class DriverStats:
    """Per-type commit counters plus rollbacks and checkpoints."""

    committed: Dict[str, int]
    rolled_back: int = 0
    checkpoints: int = 0

    @property
    def total(self) -> int:
        """All transactions attempted (committed plus rolled back)."""
        return sum(self.committed.values()) + self.rolled_back


class TpccDriver:
    """Runs the weighted transaction mix (clause 5.2.4)."""

    def __init__(
        self,
        db: TpccDatabase,
        scale: TpccScale,
        rng: TpccRandom,
        checkpoint_every: int = 1000,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.db = db
        self.scale = scale
        self.rng = rng
        self.checkpoint_every = checkpoint_every
        self.stats = DriverStats(committed={name: 0 for name, _ in TRANSACTION_MIX})
        self._since_checkpoint = 0
        self._mix_names = [name for name, _ in TRANSACTION_MIX]
        self._mix_cdf = []
        acc = 0.0
        for _, weight in TRANSACTION_MIX:
            acc += weight
            self._mix_cdf.append(acc)

    def _pick_transaction(self) -> str:
        u = self.rng.random() * self._mix_cdf[-1]
        for name, bound in zip(self._mix_names, self._mix_cdf):
            if u <= bound:
                return name
        return self._mix_names[-1]

    def run_one(self) -> str:
        """Execute one transaction from the mix; returns its name."""
        name = self._pick_transaction()
        w_id = self.rng.uniform(1, self.scale.warehouses)
        committed = TRANSACTIONS[name](self.db, self.rng, self.scale, w_id)
        if committed:
            self.stats.committed[name] += 1
        else:
            self.stats.rolled_back += 1
        self._since_checkpoint += 1
        if self.checkpoint_every and self._since_checkpoint >= self.checkpoint_every:
            self.db.checkpoint()
            self.stats.checkpoints += 1
            self._since_checkpoint = 0
        return name

    def run(self, n_transactions: int) -> DriverStats:
        """Execute ``n_transactions`` from the mix; returns the stats."""
        for _ in range(n_transactions):
            self.run_one()
        return self.stats
