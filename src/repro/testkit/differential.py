"""Differential testing: the real store vs. the dict-based oracle.

The runner drives a :class:`~repro.store.LogStructuredStore` and an
:class:`~repro.testkit.oracle.OracleStore` with the *same* operation
stream — initial sequential load, then workload-driven updates with an
optional seeded trim mix — and verifies state equivalence (live page
set, per-segment occupancy recounts, the Wamp/emptiness identities of
Equation 2) at configurable checkpoints.

Every op is simultaneously recorded into an
:class:`~repro.testkit.trace.OpTrace`.  On divergence the runner:

1. **minimizes** the failing op stream (smallest failing prefix by
   bisection, then greedy chunk removal with a bounded replay budget);
2. **saves** the minimized trace as JSONL next to the caller-chosen
   directory, so the bug reproduces with ``repro replay <trace>``;
3. raises :class:`DivergenceError` carrying the mismatch details and
   the trace path.

:func:`run_differential_grid` sweeps every policy in
:data:`repro.policies.DIFFERENTIAL_POLICIES` across the three synthetic
distribution families — the harness behind ``repro difftest`` and the
nightly CI job.
"""

from __future__ import annotations

import dataclasses
import pathlib
import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.policies import DIFFERENTIAL_POLICIES, make_policy
from repro.store.config import StoreConfig
from repro.store.log_store import LogStructuredStore
from repro.testkit.oracle import OracleStore, verify_equivalence
from repro.testkit.trace import OpTrace, state_digest
from repro.workloads import (
    HotColdWorkload,
    UniformWorkload,
    Workload,
    ZipfianWorkload,
)

__all__ = [
    "DEFAULT_WORKLOADS",
    "DifferentialOutcome",
    "DivergenceError",
    "make_diff_workload",
    "minimize_failing_ops",
    "run_differential",
    "run_differential_grid",
]

#: The three distribution families the acceptance grid runs.
DEFAULT_WORKLOADS: Tuple[str, ...] = ("uniform", "hotcold", "zipfian")


class DivergenceError(AssertionError):
    """The store and the oracle disagreed.

    Carries the mismatch list and, when a trace was saved, the path of
    the minimized re-runnable repro case.
    """

    def __init__(
        self,
        problems: Sequence[str],
        *,
        policy: str,
        workload: str,
        at_op: int,
        trace_path: Optional[pathlib.Path] = None,
    ) -> None:
        lines = ["store/oracle divergence (%s on %s, op %d):" % (policy, workload, at_op)]
        lines += ["  - %s" % p for p in problems]
        if trace_path is not None:
            lines.append("  repro: python -m repro replay %s" % trace_path)
        super().__init__("\n".join(lines))
        self.problems = list(problems)
        self.policy = policy
        self.workload = workload
        self.at_op = at_op
        self.trace_path = trace_path


@dataclasses.dataclass(frozen=True)
class DifferentialOutcome:
    """Result of one passing differential run."""

    policy: str
    workload: str
    n_ops: int
    checkpoints: int
    wamp: float
    digest: str


def default_diff_config(sort_buffer_segments: int = 1) -> StoreConfig:
    """A deliberately tiny device: cleaning runs every few dozen ops, so
    a 10k-op stream exercises thousands of cleaning cycles."""
    return StoreConfig(
        n_segments=24,
        segment_units=6,
        fill_factor=0.55,
        clean_trigger=2,
        clean_batch=2,
        sort_buffer_segments=sort_buffer_segments,
    )


def make_diff_workload(kind: str, n_pages: int, seed: int) -> Workload:
    """Build one of the named differential workload families."""
    if kind == "uniform":
        return UniformWorkload(n_pages, seed=seed)
    if kind == "hotcold":
        return HotColdWorkload(n_pages, update_fraction=0.8, seed=seed)
    if kind == "zipfian":
        return ZipfianWorkload(n_pages, seed=seed)
    raise ValueError(
        "unknown differential workload %r (expected one of %s)"
        % (kind, ", ".join(DEFAULT_WORKLOADS))
    )


def _drive_pair(
    store: LogStructuredStore, oracle: OracleStore, trace: OpTrace, op: Tuple
) -> None:
    """Apply one op to both implementations and record it."""
    trace.ops.append(op)
    OpTrace.apply(store, op)
    if op[0] == "w":
        oracle.write(op[1], op[2] if len(op) > 2 else 1)
    else:
        oracle.trim(op[1])


def run_differential(
    policy_name: str,
    workload: Union[str, Workload],
    *,
    n_ops: int = 10_000,
    config: Optional[StoreConfig] = None,
    checkpoint_every: int = 1_000,
    trim_prob: float = 0.0,
    seed: int = 0,
    wamp_tol: float = 0.05,
    divergence_dir: Optional[Union[str, pathlib.Path]] = None,
    minimize: bool = True,
) -> DifferentialOutcome:
    """Drive store and oracle through one workload; verify at checkpoints.

    Args:
        policy_name: Registered cleaning policy to attach.
        workload: A workload instance, or one of the names in
            :data:`DEFAULT_WORKLOADS` (built over ``config.user_pages``).
        n_ops: Update ops after the initial load (the load itself is
            additional and also recorded/verified).
        config: Store geometry; defaults to :func:`default_diff_config`.
        checkpoint_every: Ops between equivalence checks (the final op
            always checks, and store invariants are asserted there too).
        trim_prob: Per-op probability of issuing a trim of a random live
            page instead of the workload's write, drawn from a private
            seeded RNG (0 disables trims).
        seed: Seed for the workload (when built by name) and trim mix.
        wamp_tol: Tolerance for the asymptotic Equation 2 check.
        divergence_dir: Where to save a minimized divergence trace; no
            trace is written when None.
        minimize: Shrink the failing op stream before saving/raising.

    Returns:
        A :class:`DifferentialOutcome`; raises :class:`DivergenceError`
        on any mismatch.
    """
    if config is None:
        config = default_diff_config()
    if isinstance(workload, str):
        workload = make_diff_workload(workload, config.user_pages, seed)
    workload.reset()

    policy = make_policy(policy_name)
    needs_oracle = (
        getattr(policy, "estimator", None) == "exact"
        or getattr(policy, "exact", False) is True
    )
    frequencies = (
        [float(f) for f in workload.frequencies()] if needs_oracle else None
    )
    trace = OpTrace(config, policy_name, frequencies)
    store = LogStructuredStore(config, policy)
    if frequencies is not None:
        store.set_oracle_frequencies(frequencies)
    oracle = OracleStore(config)

    trim_rng = random.Random(seed ^ 0xFA11)
    checkpoints = 0

    def check(at_op: int) -> None:
        nonlocal checkpoints
        checkpoints += 1
        try:
            store.check_invariants()
        except Exception as exc:
            # A broken store can fail its own invariant sweep with any
            # exception type; fold it into the divergence report so the
            # repro trace still gets minimized and saved.
            problems = ["store invariant breakage: %r" % (exc,)]
        else:
            problems = verify_equivalence(store, oracle, wamp_tol=wamp_tol)
        if problems:
            _report_divergence(
                trace,
                problems,
                workload_name=workload.name,
                at_op=at_op,
                wamp_tol=wamp_tol,
                divergence_dir=divergence_dir,
                minimize=minimize,
            )

    # Initial sequential load — part of the recorded stream so replays
    # start from an empty device.
    for pid in range(workload.n_pages):
        _drive_pair(store, oracle, trace, ("w", pid))

    done = 0
    for batch in workload.batches(n_ops):
        for pid in batch:
            if trim_prob > 0.0 and oracle.live and trim_rng.random() < trim_prob:
                victim = trim_rng.choice(sorted(oracle.live))
                _drive_pair(store, oracle, trace, ("t", victim))
            else:
                _drive_pair(store, oracle, trace, ("w", int(pid)))
            done += 1
            if done % checkpoint_every == 0:
                check(len(trace))
    check(len(trace))

    return DifferentialOutcome(
        policy=policy_name,
        workload=workload.name,
        n_ops=len(trace),
        checkpoints=checkpoints,
        wamp=store.stats.write_amplification,
        digest=state_digest(store),
    )


def _report_divergence(
    trace: OpTrace,
    problems: Sequence[str],
    *,
    workload_name: str,
    at_op: int,
    wamp_tol: float,
    divergence_dir: Optional[Union[str, pathlib.Path]],
    minimize: bool,
) -> None:
    """Minimize, save, and raise for a detected divergence."""
    failing = trace
    if minimize:
        failing = trace.subset(
            minimize_failing_ops(trace, wamp_tol=wamp_tol)
        )
    trace_path: Optional[pathlib.Path] = None
    if divergence_dir is not None:
        out_dir = pathlib.Path(divergence_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        trace_path = out_dir / (
            "divergence-%s-%s-%d.jsonl" % (trace.policy, workload_name, at_op)
        )
        failing.save(trace_path, end={"divergence": list(problems)})
    raise DivergenceError(
        problems,
        policy=trace.policy,
        workload=workload_name,
        at_op=at_op,
        trace_path=trace_path,
    )


def replay_diverges(
    trace: OpTrace, ops: Sequence[Tuple], *, wamp_tol: float = 0.05
) -> bool:
    """Replay ``ops`` from scratch; True when the run still fails.

    A crash anywhere during the replay counts as a failure too, so
    minimization keeps traces that turn a miscount into an outright
    exception.
    """
    try:
        store = trace.build_store()
        oracle = OracleStore(trace.config)
        for op in ops:
            OpTrace.apply(store, op)
            if op[0] == "w":
                oracle.write(op[1], op[2] if len(op) > 2 else 1)
            else:
                oracle.trim(op[1])
        store.check_invariants()
    except Exception:
        return True
    return bool(verify_equivalence(store, oracle, wamp_tol=wamp_tol))


def minimize_failing_ops(
    trace: OpTrace,
    *,
    wamp_tol: float = 0.05,
    budget: int = 120,
) -> List[Tuple]:
    """Shrink a failing op stream while it keeps failing.

    Two phases, each bounded by ``budget`` total replays:

    1. bisect to the smallest failing *prefix* (divergences are sticky
       in practice — once the state disagrees it stays disagreed — so
       prefix length is effectively monotone);
    2. greedy chunk removal (ddmin-style halving) inside that prefix.

    Returns the minimized op list; falls back to the full stream if the
    full stream itself does not reproduce (flaky environment).
    """
    ops = list(trace.ops)
    spent = 0

    def fails(candidate: Sequence[Tuple]) -> bool:
        nonlocal spent
        spent += 1
        return replay_diverges(trace, candidate, wamp_tol=wamp_tol)

    if not fails(ops):
        return ops

    lo, hi = 1, len(ops)  # invariant: ops[:hi] fails
    while lo < hi and spent < budget:
        mid = (lo + hi) // 2
        if fails(ops[:mid]):
            hi = mid
        else:
            lo = mid + 1
    ops = ops[:hi]

    chunk = max(1, len(ops) // 2)
    while spent < budget:
        removed_any = False
        start = 0
        while start < len(ops) and spent < budget:
            candidate = ops[:start] + ops[start + chunk:]
            if candidate and fails(candidate):
                ops = candidate
                removed_any = True
            else:
                start += chunk
        if chunk > 1:
            chunk //= 2
        elif not removed_any:
            break
    return ops


def run_differential_grid(
    policies: Optional[Iterable[str]] = None,
    workloads: Iterable[str] = DEFAULT_WORKLOADS,
    *,
    n_ops: int = 10_000,
    config: Optional[StoreConfig] = None,
    checkpoint_every: int = 1_000,
    trim_prob: float = 0.0,
    seed: int = 0,
    wamp_tol: float = 0.05,
    divergence_dir: Optional[Union[str, pathlib.Path]] = None,
) -> List[DifferentialOutcome]:
    """Run :func:`run_differential` for every policy x workload pair.

    Stops at the first divergence (the raised :class:`DivergenceError`
    names the failing pair and its saved trace).
    """
    if policies is None:
        policies = DIFFERENTIAL_POLICIES
    outcomes: List[DifferentialOutcome] = []
    for policy_name in policies:
        for kind in workloads:
            outcomes.append(
                run_differential(
                    policy_name,
                    kind,
                    n_ops=n_ops,
                    config=config,
                    checkpoint_every=checkpoint_every,
                    trim_prob=trim_prob,
                    seed=seed,
                    wamp_tol=wamp_tol,
                    divergence_dir=divergence_dir,
                )
            )
    return outcomes
