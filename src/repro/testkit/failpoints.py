"""Deterministic, seedable fault injection ("failpoints").

Production code marks crash-relevant spots with a named call::

    from repro.testkit.failpoints import failpoint
    ...
    failpoint("persistence.save.pre_rename", path=tmp_path)

When nothing is armed the call is a single attribute check — cheap
enough to leave in non-hot paths permanently (the instrumented sites are
checkpoint saves, manifest appends, and cleaning cycles, never the
per-write fast path).  Tests arm a failpoint to turn the marked moment
into an injected crash, making crash-at-any-point coverage a one-liner::

    with FAILPOINTS.armed("persistence.save.pre_rename"):
        with pytest.raises(InjectedFault):
            save_store(store, path)

Arming supports:

* ``times`` — fire on the first N eligible hits (default: every hit);
* ``skip`` — let the first N hits pass before becoming eligible, so the
  "crash on the third append" tests need no counting in the test body;
* ``prob``/``seed`` — fire on each eligible hit with probability ``prob``
  drawn from a **private** ``random.Random(seed)``, so randomized fault
  schedules are reproducible and independent of global RNG state;
* ``hook`` — run an arbitrary callable (observe, mutate, or raise
  something custom) instead of raising :class:`InjectedFault`.

The registry also counts hits while any arm or tracing is active, which
lets tests assert that a code path actually passed a given point.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "FAILPOINTS",
    "FailpointRegistry",
    "InjectedFault",
    "failpoint",
]


class InjectedFault(Exception):
    """Raised at an armed failpoint (simulates a crash at that spot)."""

    def __init__(self, name: str) -> None:
        super().__init__("injected fault at failpoint %r" % name)
        self.name = name


class _Arm:
    """One armed behavior attached to a failpoint name."""

    __slots__ = ("name", "times", "skip", "prob", "exc", "hook", "fired", "_rng")

    def __init__(
        self,
        name: str,
        times: Optional[int],
        skip: int,
        prob: Optional[float],
        seed: int,
        exc: Optional[BaseException],
        hook: Optional[Callable[[Dict[str, Any]], None]],
    ) -> None:
        if times is not None and times < 1:
            raise ValueError("times must be >= 1 or None")
        if skip < 0:
            raise ValueError("skip must be >= 0")
        if prob is not None and not 0.0 <= prob <= 1.0:
            raise ValueError("prob must be in [0, 1]")
        self.name = name
        self.times = times
        self.skip = skip
        self.prob = prob
        self.exc = exc
        self.hook = hook
        self.fired = 0
        self._rng = random.Random(seed) if prob is not None else None

    def fire(self, ctx: Dict[str, Any]) -> None:
        if self.times is not None and self.fired >= self.times:
            return
        if self.skip > 0:
            self.skip -= 1
            return
        if self._rng is not None and self._rng.random() >= self.prob:
            return
        self.fired += 1
        if self.hook is not None:
            self.hook(ctx)
            return
        if self.exc is not None:
            raise self.exc
        raise InjectedFault(self.name)


class FailpointRegistry:
    """Process-local registry of armed failpoints and hit counters."""

    def __init__(self) -> None:
        self._arms: Dict[str, List[_Arm]] = {}
        self._hits: Dict[str, int] = {}
        self._listeners: List[Callable[[str, Dict[str, Any]], None]] = []
        self._tracing = False
        #: Fast-path flag read by :func:`failpoint`; True only while at
        #: least one arm, listener, or tracing scope exists.
        self.active = False

    # -- arming --------------------------------------------------------

    def arm(
        self,
        name: str,
        *,
        times: Optional[int] = None,
        skip: int = 0,
        prob: Optional[float] = None,
        seed: int = 0,
        exc: Optional[BaseException] = None,
        hook: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> _Arm:
        """Attach crash/hook behavior to ``name``; returns the arm (its
        ``fired`` counter tells how often it triggered)."""
        arm = _Arm(name, times, skip, prob, seed, exc, hook)
        self._arms.setdefault(name, []).append(arm)
        self.active = True
        return arm

    def disarm(self, name: str) -> None:
        """Remove every arm attached to ``name``."""
        self._arms.pop(name, None)
        self._refresh_active()

    def clear(self) -> None:
        """Remove all arms, listeners, and hit counters."""
        self._arms.clear()
        self._hits.clear()
        self._listeners.clear()
        self._tracing = False
        self.active = False

    # -- listeners -----------------------------------------------------

    def add_listener(
        self, callback: Callable[[str, Dict[str, Any]], None]
    ) -> None:
        """Observe every hit without injecting anything: ``callback``
        runs as ``callback(name, ctx)`` before any armed behavior fires
        (observers see the hit even when the arm then raises)."""
        self._listeners.append(callback)
        self.active = True

    def remove_listener(
        self, callback: Callable[[str, Dict[str, Any]], None]
    ) -> None:
        """Detach a listener added with :meth:`add_listener`."""
        try:
            self._listeners.remove(callback)
        except ValueError:
            pass
        self._refresh_active()

    @contextmanager
    def armed(self, name: str, **kwargs) -> Iterator[_Arm]:
        """Scope-limited :meth:`arm`; disarms that one arm on exit."""
        arm = self.arm(name, **kwargs)
        try:
            yield arm
        finally:
            arms = self._arms.get(name)
            if arms is not None:
                try:
                    arms.remove(arm)
                except ValueError:
                    pass
                if not arms:
                    del self._arms[name]
            self._refresh_active()

    @contextmanager
    def tracing(self) -> Iterator["FailpointRegistry"]:
        """Count hits at every failpoint without injecting anything."""
        self._tracing = True
        self.active = True
        try:
            yield self
        finally:
            self._tracing = False
            self._refresh_active()

    def _refresh_active(self) -> None:
        self.active = bool(self._arms) or bool(self._listeners) or self._tracing

    # -- the call site -------------------------------------------------

    def hit(self, name: str, ctx: Dict[str, Any]) -> None:
        """Record a hit and fire any matching arms (may raise)."""
        self._hits[name] = self._hits.get(name, 0) + 1
        for listener in self._listeners:
            listener(name, ctx)
        for arm in self._arms.get(name, ()):
            arm.fire(ctx)

    # -- introspection -------------------------------------------------

    def count(self, name: str) -> int:
        """Hits recorded at ``name`` while the registry was active."""
        return self._hits.get(name, 0)

    def names_hit(self) -> List[str]:
        """All failpoint names hit so far, sorted."""
        return sorted(self._hits)


#: The process-wide registry every instrumented call site consults.
FAILPOINTS = FailpointRegistry()


def failpoint(name: str, **ctx: Any) -> None:
    """Mark a crash-relevant spot in production code.

    No-op (one attribute read) unless something is armed or tracing.
    """
    if FAILPOINTS.active:
        FAILPOINTS.hit(name, ctx)
