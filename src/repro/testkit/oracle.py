"""A trivially-correct reference model of the log-structured store.

The optimized :class:`~repro.store.LogStructuredStore` maintains its
accounting *incrementally* — live counts, unit sums, frequency sums, and
the paper's counters are updated in place on every write, seal, and
cleaning cycle, because recomputing them would dominate simulation time.
Incremental bookkeeping is exactly where silent corruption hides, and a
corrupt counter skews every reproduced number (Wamp is a ratio of two
counters).

:class:`OracleStore` is the antidote: a dict-based model with **no**
optimizations and no policy logic.  It consumes the same operation
stream (write / trim) and tracks only what must be true of *any* correct
store, independent of cleaning policy:

* which pages hold a current version, and at what size;
* total live units;
* the clock and the user-facing counters (user writes, trims).

:func:`verify_equivalence` then cross-checks a real store against the
oracle **and** re-derives the store's per-segment occupancy from raw
slot logs (the ground truth the incremental counters summarize), plus
the paper's counter identities:

* ``gc_writes == B * (segments_cleaned - cleaned_emptiness_sum)`` — the
  exact per-cycle form of Equation 2 for unit-size pages: every cleaned
  segment contributes its live pages ``(1 - E) * B`` to ``gc_writes``;
* ``user_device_writes + gc_writes == B * segments_cleaned + standing``
  where ``standing`` is the units appended into not-yet-cleaned
  segments — append-flow conservation (every cleaned unit-size segment
  was appended full before it was cleaned);
* ``Wamp_device ≈ (1 - E) / E`` — Equation 2 itself, which holds up to
  the standing term above and is therefore only checked once cleaning
  volume dominates standing data (the gate is derived from the exact
  relation, not a magic minimum).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.store.config import StoreConfig
from repro.store.errors import PageSizeError
from repro.store.log_store import LogStructuredStore
from repro.store.pagetable import NEVER_WRITTEN

__all__ = ["OracleStore", "recount_segments", "verify_equivalence"]


class OracleStore:
    """Dead-simple dict-based store model: one dict, four counters."""

    def __init__(self, config: StoreConfig) -> None:
        self.config = config
        #: page id -> size of its current version (absence = no version).
        self.live: Dict[int, int] = {}
        self.clock = 0
        self.user_writes = 0
        self.trims = 0
        #: page id -> total updates ever (empirical frequency numerator).
        self.write_counts: Dict[int, int] = {}
        self._saw_nonunit = False

    def write(self, page_id: int, size: int = 1) -> None:
        """Apply one user update (same contract as the real store)."""
        if size < 1 or size > self.config.segment_units:
            raise PageSizeError(
                "page size %d outside [1, %d]" % (size, self.config.segment_units)
            )
        self.clock += 1
        self.user_writes += 1
        self.live[page_id] = size
        self.write_counts[page_id] = self.write_counts.get(page_id, 0) + 1
        if size != 1:
            self._saw_nonunit = True

    def trim(self, page_id: int) -> bool:
        """Discard a page's current version; False if it has none."""
        if page_id not in self.live:
            return False
        self.clock += 1
        self.trims += 1
        del self.live[page_id]
        return True

    def live_pages(self) -> Set[int]:
        """Pages currently holding a version."""
        return set(self.live)

    def live_units(self) -> int:
        """Total units of live data."""
        return sum(self.live.values())

    def unit_sized(self) -> bool:
        """True when every write so far had size 1 (the paper's
        fixed-size experiments, where page counts and unit counts
        coincide and sealed segments are always appended full)."""
        return not self._saw_nonunit


def recount_segments(store: LogStructuredStore) -> List[Tuple[int, int]]:
    """Re-derive ``(live_count, live_units)`` per segment from the raw
    slot logs and the page table — the brute-force ground truth that the
    store's incremental counters are supposed to equal."""
    pages = store.pages
    seg_col, slot_col, size_col = pages.seg, pages.slot, pages.size
    segments = store.segments
    out: List[Tuple[int, int]] = []
    for seg in range(len(segments)):
        count = 0
        units = 0
        for slot, pid in enumerate(segments.slot_list(seg)):
            if seg_col[pid] == seg and slot_col[pid] == slot:
                count += 1
                units += size_col[pid]
        out.append((count, units))
    return out


def verify_equivalence(
    store: LogStructuredStore,
    oracle: OracleStore,
    *,
    wamp_tol: float = 0.05,
) -> List[str]:
    """Cross-check ``store`` against ``oracle``; returns mismatch
    descriptions (empty list = equivalent).

    Checks, in order of bluntness:

    1. clocks and user-facing counters agree;
    2. the live page set and per-page sizes agree;
    3. total live units agree (device segments + sorting buffer);
    4. per-segment occupancy recomputed from slot logs equals the
       store's incremental counters;
    5. ``gc_writes = B * (segments_cleaned - cleaned_emptiness_sum)``
       and append-flow conservation, both exactly (unit-size pages);
    6. ``Wamp_device ≈ (1 - E) / E`` within ``wamp_tol``, once cleaning
       volume dominates the standing (not-yet-cleaned) data enough for
       the asymptotic identity to be expected to hold that tightly.
    """
    problems: List[str] = []
    stats = store.stats

    if store.clock != oracle.clock:
        problems.append("clock: store=%d oracle=%d" % (store.clock, oracle.clock))
    if stats.user_writes != oracle.user_writes:
        problems.append(
            "user_writes: store=%d oracle=%d"
            % (stats.user_writes, oracle.user_writes)
        )
    if stats.trims != oracle.trims:
        problems.append("trims: store=%d oracle=%d" % (stats.trims, oracle.trims))

    pages = store.pages
    store_live = {
        pid for pid in range(len(pages.seg)) if pages.seg[pid] != NEVER_WRITTEN
    }
    oracle_live = oracle.live_pages()
    if store_live != oracle_live:
        missing = sorted(oracle_live - store_live)[:8]
        phantom = sorted(store_live - oracle_live)[:8]
        problems.append(
            "live page set differs: store lost %r, store invented %r"
            % (missing, phantom)
        )
    else:
        wrong_sizes = [
            (pid, pages.size[pid], oracle.live[pid])
            for pid in oracle_live
            if pages.size[pid] != oracle.live[pid]
        ]
        if wrong_sizes:
            problems.append(
                "page sizes differ (pid, store, oracle): %r" % (wrong_sizes[:8],)
            )

    segs = store.segments
    # A mid-flight incremental cleaning cycle holds its still-live
    # staged pages in neither a segment nor the buffer; without the
    # relocating term the oracle would report them "lost" at every
    # preemption point.
    reloc_units = store.relocating_units()
    store_units = sum(segs.live_units) + reloc_units
    if store.buffer is not None:
        store_units += store.buffer.used_units
    if store_units != oracle.live_units():
        problems.append(
            "live units: store=%d oracle=%d" % (store_units, oracle.live_units())
        )

    for seg, (count, units) in enumerate(recount_segments(store)):
        if segs.live_count[seg] != count or segs.live_units[seg] != units:
            problems.append(
                "segment %d occupancy: store counts (C=%d, units=%d), "
                "slot-log recount (C=%d, units=%d)"
                % (seg, segs.live_count[seg], segs.live_units[seg], count, units)
            )

    if oracle.unit_sized():
        capacity = segs.capacity
        # At a preemption point the identity holds in completed form:
        # still-live staged units WILL become gc_writes, and staged
        # copies already obsoleted (but not yet skip-credited) WILL
        # fold into cleaned_emptiness_sum when their step reaches them.
        pending_dead = store.relocating_dead_units()
        gc_eff = stats.gc_writes + reloc_units
        expected_gc = capacity * (
            stats.segments_cleaned - stats.cleaned_emptiness_sum
        ) - pending_dead
        if abs(gc_eff - expected_gc) > 1e-6 * max(1.0, abs(expected_gc)):
            problems.append(
                "emptiness identity: gc_writes(+staged)=%d but "
                "B*(cleaned - emptiness_sum) - pending_dead=%.6f"
                % (gc_eff, expected_gc)
            )

        # Append-flow conservation: every cleaned segment was appended
        # full (B units) before cleaning; the rest of the appends are
        # standing in current segments' used_units.
        standing = sum(segs.used_units)
        total_appends = stats.user_device_writes + stats.gc_writes
        expected_appends = capacity * stats.segments_cleaned + standing
        if total_appends != expected_appends:
            problems.append(
                "append-flow conservation: user_device+gc=%d but "
                "B*cleaned + standing used_units=%d"
                % (total_appends, expected_appends)
            )

        # Equation 2 (asymptotic): exactly, Wamp_device equals
        # (1-E)/E / (1 + standing / (B * cleaned * E)), so the check is
        # gated on the correction term being well inside the tolerance.
        if stats.segments_cleaned > 0 and stats.user_device_writes > 0:
            e = stats.cleaned_emptiness_sum / stats.segments_cleaned
            if e > 0.0:
                cleaning_volume = capacity * stats.segments_cleaned * e
                if standing <= 0.5 * wamp_tol * cleaning_volume:
                    predicted = (1.0 - e) / e
                    measured = stats.gc_writes / stats.user_device_writes
                    if abs(measured - predicted) > wamp_tol * max(1.0, predicted):
                        problems.append(
                            "Equation 2: Wamp_device=%.4f but (1-E)/E=%.4f "
                            "(E=%.4f)" % (measured, predicted, e)
                        )

    return problems
