"""Correctness backbone: differential oracle, fault injection, traces.

Four pieces, each usable on its own:

* :mod:`repro.testkit.oracle` — a trivially-correct dict-based store
  model plus :func:`~repro.testkit.oracle.verify_equivalence`;
* :mod:`repro.testkit.differential` — drives the real store and the
  oracle with one op stream and checks equivalence at checkpoints;
* :mod:`repro.testkit.failpoints` — deterministic, seedable fault
  injection for crash-consistency tests;
* :mod:`repro.testkit.trace` — JSONL record/replay of op streams with a
  self-verifying state digest (``repro replay <trace>``).

This module is imported by production code (the failpoint call sites in
:mod:`repro.store.persistence` and :mod:`repro.sweep`), so it must stay
import-light: only the dependency-free failpoints module loads eagerly;
everything else resolves lazily on first attribute access.
"""

from repro.testkit.failpoints import FAILPOINTS, FailpointRegistry, InjectedFault, failpoint

__all__ = [
    "FAILPOINTS",
    "FailpointRegistry",
    "InjectedFault",
    "failpoint",
    # lazy (see __getattr__):
    "DifferentialOutcome",
    "DivergenceError",
    "OpTrace",
    "OracleStore",
    "TraceError",
    "run_differential",
    "run_differential_grid",
    "state_digest",
    "verify_equivalence",
]

_LAZY = {
    "DifferentialOutcome": "repro.testkit.differential",
    "DivergenceError": "repro.testkit.differential",
    "run_differential": "repro.testkit.differential",
    "run_differential_grid": "repro.testkit.differential",
    "OracleStore": "repro.testkit.oracle",
    "verify_equivalence": "repro.testkit.oracle",
    "OpTrace": "repro.testkit.trace",
    "TraceError": "repro.testkit.trace",
    "state_digest": "repro.testkit.trace",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    import importlib

    return getattr(importlib.import_module(module_name), name)
