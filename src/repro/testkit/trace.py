"""Record / replay of store operation streams as compact JSONL traces.

A trace is the full recipe for one store run: the first line carries the
config, policy name, and (optionally) oracle frequencies; every
following line is one operation, encoded as a small JSON array::

    {"kind": "trace", "version": 1, "config": {...}, "policy": "mdc"}
    ["w", 17]          <- write page 17, size 1
    ["w", 3, 2]        <- write page 3, size 2
    ["t", 17]          <- trim page 17
    {"kind": "end", "ops": 3, "digest": "1f2e...", "user_writes": 2}

Replaying a trace rebuilds the store from scratch and re-applies the
operations; since the simulator is deterministic given its op stream,
the final state — captured by :func:`state_digest`, a hash over *every*
store table — is byte-identical run to run.  That is what makes a trace
a self-verifying repro case: the ``end`` record freezes the digest the
recorder observed, and ``repro replay`` recomputes and compares it.

The differential harness (:mod:`repro.testkit.differential`) records the
op stream it drives; on divergence it minimizes and saves the trace
here, so every found bug ships with a one-command reproduction.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.policies import make_policy
from repro.store.config import StoreConfig
from repro.store.errors import StoreError
from repro.store.log_store import LogStructuredStore

__all__ = ["OpTrace", "TraceError", "state_digest"]

TRACE_VERSION = 1

#: Op kinds: ("w", page_id, size) and ("t", page_id).
WRITE = "w"
TRIM = "t"


class TraceError(StoreError):
    """A trace file is malformed or does not replay as recorded."""


def state_digest(store: LogStructuredStore) -> str:
    """Deterministic digest of the complete store state.

    Covers every table the simulator owns — page table, segment table
    (including slot logs), free pool, open segments, sorting buffer,
    clock, and statistics — so two stores with equal digests are
    behaviorally indistinguishable.  Floats hash via ``repr`` (shortest
    round-trip form, stable across CPython runs and platforms).
    """
    h = hashlib.sha256()

    def feed(tag: str, value: Any) -> None:
        h.update(tag.encode())
        h.update(b"=")
        h.update(repr(value).encode())
        h.update(b";")

    feed("config", sorted(dataclasses.asdict(store.config).items()))
    feed("policy", getattr(store.policy, "name", "?"))
    feed("clock", store.clock)
    stats = store.stats
    feed(
        "stats",
        (
            stats.user_writes,
            stats.user_device_writes,
            stats.gc_writes,
            stats.trims,
            stats.segments_cleaned,
            stats.cleaned_emptiness_sum,
            stats.clean_cycles,
        ),
    )
    # Numpy columns hash via ``.tolist()``: the repr of a list of Python
    # scalars is what the digest covered when the tables were plain
    # lists, so digests stay comparable across storage layouts.
    pages = store.pages
    feed("page_seg", pages.seg.tolist())
    feed("page_slot", pages.slot.tolist())
    feed("page_carried_up2", pages.carried_up2.tolist())
    feed("page_last_write", pages.last_write.tolist())
    feed("page_size", pages.size.tolist())
    feed("page_oracle", pages.oracle_freq.tolist())
    segs = store.segments
    feed("seg_state", segs.state.tolist())
    feed("seg_live_count", segs.live_count.tolist())
    feed("seg_live_units", segs.live_units.tolist())
    feed("seg_used_units", segs.used_units.tolist())
    feed("seg_seal_time", segs.seal_time.tolist())
    feed("seg_up1", segs.up1.tolist())
    feed("seg_up2", segs.up2.tolist())
    feed("seg_up2_sum", segs.up2_sum.tolist())
    feed("seg_freq_sum", segs.freq_sum.tolist())
    feed("seg_erase_count", segs.erase_count.tolist())
    n_segs = len(segs)
    feed("slots", [segs.slot_list(s) for s in range(n_segs)])
    feed("slot_sizes", [segs.slot_size_list(s) for s in range(n_segs)])
    feed("free_list", list(store.free_list))
    feed("open_segments", sorted(store.open_segments.items()))
    if store.buffer is not None:
        feed("buffer", list(store.buffer._sizes.items()))
    return h.hexdigest()


class OpTrace:
    """A recorded operation stream plus everything needed to replay it."""

    def __init__(
        self,
        config: StoreConfig,
        policy: str,
        frequencies: Optional[Sequence[float]] = None,
    ) -> None:
        self.config = config
        self.policy = policy
        #: Exact per-page frequencies for ``-opt`` policies (optional).
        self.frequencies = list(frequencies) if frequencies is not None else None
        self.ops: List[Tuple] = []

    # -- recording -----------------------------------------------------

    def record_write(self, page_id: int, size: int = 1) -> None:
        """Append one user write to the trace."""
        if size == 1:
            self.ops.append((WRITE, page_id))
        else:
            self.ops.append((WRITE, page_id, size))

    def record_trim(self, page_id: int) -> None:
        """Append one trim to the trace."""
        self.ops.append((TRIM, page_id))

    def __len__(self) -> int:
        return len(self.ops)

    def subset(self, ops: Sequence[Tuple]) -> "OpTrace":
        """A new trace with the same header but a different op list
        (used by divergence minimization)."""
        out = OpTrace(self.config, self.policy, self.frequencies)
        out.ops = list(ops)
        return out

    # -- replay --------------------------------------------------------

    def build_store(self) -> LogStructuredStore:
        """Fresh store exactly as the recorder configured it."""
        store = LogStructuredStore(self.config, make_policy(self.policy))
        if self.frequencies is not None:
            store.set_oracle_frequencies(self.frequencies)
        return store

    @staticmethod
    def apply(store: LogStructuredStore, op: Tuple) -> None:
        """Apply one decoded op to ``store``."""
        kind = op[0]
        if kind == WRITE:
            store.write(op[1], op[2] if len(op) > 2 else 1)
        elif kind == TRIM:
            store.trim(op[1])
        else:
            raise TraceError("unknown op kind %r" % (kind,))

    def replay(
        self,
        store: Optional[LogStructuredStore] = None,
        upto: Optional[int] = None,
    ) -> LogStructuredStore:
        """Re-apply the first ``upto`` ops (all by default); returns the
        store (a fresh one unless the caller supplied one)."""
        if store is None:
            store = self.build_store()
        ops = self.ops if upto is None else self.ops[:upto]
        apply = self.apply
        for op in ops:
            apply(store, op)
        return store

    # -- persistence ---------------------------------------------------

    def save(
        self,
        path: Union[str, pathlib.Path],
        end: Optional[Dict[str, Any]] = None,
    ) -> pathlib.Path:
        """Write the trace as JSONL; ``end`` extras (digest, counters)
        land in the trailing ``end`` record."""
        path = pathlib.Path(path)
        header = {
            "kind": "trace",
            "version": TRACE_VERSION,
            "config": dataclasses.asdict(self.config),
            "policy": self.policy,
        }
        if self.frequencies is not None:
            header["frequencies"] = self.frequencies
        footer = {"kind": "end", "ops": len(self.ops)}
        if end:
            footer.update(end)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for op in self.ops:
                fh.write(json.dumps(list(op)) + "\n")
            fh.write(json.dumps(footer, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(
        cls, path: Union[str, pathlib.Path]
    ) -> "Tuple[OpTrace, Dict[str, Any]]":
        """Read a saved trace; returns ``(trace, end_record)`` — the end
        record is empty for a trace truncated before its footer."""
        path = pathlib.Path(path)
        trace: Optional[OpTrace] = None
        end: Dict[str, Any] = {}
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(_nonempty(fh), start=1):
                try:
                    record = json.loads(line)
                except ValueError:
                    raise TraceError(
                        "corrupt trace line %d in %s" % (lineno, path)
                    ) from None
                if isinstance(record, list):
                    if trace is None:
                        raise TraceError(
                            "%s: op before trace header (line %d)" % (path, lineno)
                        )
                    trace.ops.append(tuple(record))
                elif isinstance(record, dict) and record.get("kind") == "trace":
                    if record.get("version") != TRACE_VERSION:
                        raise TraceError(
                            "unsupported trace version %r in %s"
                            % (record.get("version"), path)
                        )
                    trace = cls(
                        StoreConfig(**record["config"]),
                        record["policy"],
                        record.get("frequencies"),
                    )
                elif isinstance(record, dict) and record.get("kind") == "end":
                    end = record
                else:
                    raise TraceError(
                        "unknown record on line %d of %s" % (lineno, path)
                    )
        if trace is None:
            raise TraceError("%s contains no trace header" % path)
        if end and end.get("ops") != len(trace.ops):
            raise TraceError(
                "%s: end record says %r ops but %d were read"
                % (path, end.get("ops"), len(trace.ops))
            )
        return trace, end


def _nonempty(fh) -> Iterator[str]:
    for line in fh:
        line = line.strip()
        if line:
            yield line
