"""Log-structured file system: the original LFS application [23]."""

from repro.lfs.filesystem import FsError, Inode, LogStructuredFileSystem

__all__ = ["FsError", "Inode", "LogStructuredFileSystem"]
