"""A log-structured file system over the segment-cleaned store.

Log structuring was "invented for and used initially in file systems"
(paper Section 1; Rosenblum & Ousterhout's LFS [23]).  This module is
that original application, built on the repository's substrate: files
are block arrays, every block write appends to the log through the
store (so rewriting a block relocates it), and reclaiming segment space
is the cleaning problem MDC solves.

Simplifications, in the same spirit as the rest of the simulator:

* the namespace (directories) and the inode map live in RAM — in a real
  LFS they are themselves log data, but their traffic is negligible
  next to file blocks and they would obscure the measurement;
* block *contents* are kept in a RAM shadow so reads can be verified
  end-to-end, while every block's placement, relocation, and
  reclamation happens in the simulated log for real.
"""

from __future__ import annotations

import dataclasses
import posixpath
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.policies import make_policy
from repro.policies.base import CleaningPolicy
from repro.store import LogStructuredStore, StoreConfig


class FsError(Exception):
    """File-system errors (missing paths, directory misuse...)."""


@dataclasses.dataclass
class Inode:
    """One file: a growable array of log blocks."""

    ino: int
    #: block index -> store page id (None for holes in sparse files).
    blocks: List[Optional[int]]
    size: int = 0

    @property
    def allocated_blocks(self) -> int:
        """Blocks that occupy device space (holes excluded)."""
        return sum(1 for b in self.blocks if b is not None)


class LogStructuredFileSystem:
    """A minimal LFS: hierarchical namespace, byte-addressed files,
    pluggable segment cleaning.

    Args:
        config: Geometry of the simulated device; one store unit is one
            file block of ``block_bytes``.
        policy: Cleaning policy name or instance (default ``"mdc"``).
        block_bytes: File-block size (the paper's pages are 4 KB).
    """

    def __init__(
        self,
        config: StoreConfig,
        policy: Union[str, CleaningPolicy] = "mdc",
        block_bytes: int = 4096,
    ) -> None:
        if block_bytes < 1:
            raise FsError("block_bytes must be positive")
        if isinstance(policy, str):
            policy = make_policy(policy)
        self.block_bytes = block_bytes
        self.store = LogStructuredStore(config, policy)
        self._inodes: Dict[int, Inode] = {}
        #: absolute dir path -> {entry name -> ino (files) or None (dirs)}
        self._dirs: Dict[str, Dict[str, Optional[int]]] = {"/": {}}
        self._next_ino = 1
        self._free_pages: List[int] = []
        self._next_page = 0
        #: RAM shadow of block contents, keyed by store page id.
        self._shadow: Dict[int, bytes] = {}

    # -- namespace ---------------------------------------------------------

    @staticmethod
    def _normalize(path: str) -> str:
        if not path.startswith("/"):
            raise FsError("paths must be absolute, got %r" % (path,))
        norm = posixpath.normpath(path)
        return norm

    def _split(self, path: str) -> Tuple[str, str]:
        norm = self._normalize(path)
        parent, name = posixpath.split(norm)
        if not name:
            raise FsError("cannot operate on the root directory")
        return parent, name

    def mkdir(self, path: str) -> None:
        """Create a directory (parent must exist)."""
        parent, name = self._split(path)
        entries = self._dir_entries(parent)
        if name in entries:
            raise FsError("%s already exists" % path)
        entries[name] = None
        self._dirs[posixpath.join(parent, name)] = {}

    def _dir_entries(self, path: str) -> Dict[str, Optional[int]]:
        norm = self._normalize(path) if path != "/" else "/"
        try:
            return self._dirs[norm]
        except KeyError:
            raise FsError("no such directory: %s" % path) from None

    def listdir(self, path: str = "/") -> List[str]:
        """Sorted entry names of a directory."""
        return sorted(self._dir_entries(path))

    def exists(self, path: str) -> bool:
        """Whether ``path`` names an existing file or directory."""
        try:
            parent, name = self._split(path)
            return name in self._dir_entries(parent)
        except FsError:
            return path in ("/",)

    def _inode_of(self, path: str) -> Inode:
        parent, name = self._split(path)
        entries = self._dir_entries(parent)
        if name not in entries:
            raise FsError("no such file: %s" % path)
        ino = entries[name]
        if ino is None:
            raise FsError("%s is a directory" % path)
        return self._inodes[ino]

    # -- file lifecycle --------------------------------------------------

    def create(self, path: str) -> int:
        """Create an empty file; returns its inode number."""
        parent, name = self._split(path)
        entries = self._dir_entries(parent)
        if name in entries:
            raise FsError("%s already exists" % path)
        ino = self._next_ino
        self._next_ino += 1
        self._inodes[ino] = Inode(ino=ino, blocks=[])
        entries[name] = ino
        return ino

    def unlink(self, path: str) -> None:
        """Delete a file; all its blocks become reclaimable."""
        parent, name = self._split(path)
        entries = self._dir_entries(parent)
        ino = entries.get(name)
        if ino is None:
            raise FsError(
                "no such file: %s" % path if name not in entries
                else "%s is a directory" % path
            )
        inode = self._inodes.pop(ino)
        for page in inode.blocks:
            if page is not None:
                self._trim_page(page)
        del entries[name]

    def truncate(self, path: str, size: int) -> None:
        """Shrink or (sparsely) grow a file to ``size`` bytes."""
        if size < 0:
            raise FsError("size must be non-negative")
        inode = self._inode_of(path)
        keep = -(-size // self.block_bytes)  # ceil
        for page in inode.blocks[keep:]:
            if page is not None:
                self._trim_page(page)
        del inode.blocks[keep:]
        inode.blocks.extend([None] * (keep - len(inode.blocks)))
        if size < inode.size:
            # Trim the tail of the (now) last block's shadow.
            last = keep - 1
            if last >= 0 and inode.blocks[last] is not None:
                offset = size - last * self.block_bytes
                page = inode.blocks[last]
                self._shadow[page] = self._shadow[page][:offset]
        inode.size = size

    # -- I/O ------------------------------------------------------------

    def write(self, path: str, offset: int, data: bytes) -> int:
        """Write ``data`` at ``offset``; returns bytes written.

        Every touched block is (re)written to the log — an overwrite in
        the middle of a file relocates those blocks, never updates in
        place.
        """
        if offset < 0:
            raise FsError("offset must be non-negative")
        inode = self._inode_of(path)
        data = bytes(data)
        pos = offset
        remaining = data
        while remaining:
            block_idx = pos // self.block_bytes
            within = pos % self.block_bytes
            take = min(self.block_bytes - within, len(remaining))
            self._write_block(inode, block_idx, within, remaining[:take])
            remaining = remaining[take:]
            pos += take
        inode.size = max(inode.size, offset + len(data))
        return len(data)

    def read(self, path: str, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Read up to ``length`` bytes from ``offset`` (to EOF when
        omitted); holes read as zero bytes."""
        if offset < 0:
            raise FsError("offset must be non-negative")
        inode = self._inode_of(path)
        end = inode.size if length is None else min(inode.size, offset + length)
        if offset >= end:
            return b""
        out = bytearray()
        pos = offset
        while pos < end:
            block_idx = pos // self.block_bytes
            within = pos % self.block_bytes
            take = min(self.block_bytes - within, end - pos)
            block = self._block_bytes(inode, block_idx)
            out += block[within:within + take]
            pos += take
        return bytes(out)

    def stat(self, path: str) -> Dict[str, int]:
        """Inode number, byte size, and allocated block count."""
        inode = self._inode_of(path)
        return {
            "ino": inode.ino,
            "size": inode.size,
            "blocks": inode.allocated_blocks,
        }

    def walk(self, path: str = "/") -> Iterator[Tuple[str, List[str], List[str]]]:
        """Like :func:`os.walk` over the namespace."""
        entries = self._dir_entries(path)
        dirs = sorted(n for n, ino in entries.items() if ino is None)
        files = sorted(n for n, ino in entries.items() if ino is not None)
        yield path, dirs, files
        for d in dirs:
            child = posixpath.join(path, d)
            yield from self.walk(child)

    # -- internals -----------------------------------------------------------

    def _write_block(self, inode: Inode, block_idx: int, within: int, chunk: bytes) -> None:
        while len(inode.blocks) <= block_idx:
            inode.blocks.append(None)
        page = inode.blocks[block_idx]
        if page is None:
            page = self._free_pages.pop() if self._free_pages else self._next_page
            if page == self._next_page:
                self._next_page += 1
            inode.blocks[block_idx] = page
            old = b""
        else:
            old = self._shadow.get(page, b"")
        block = bytearray(old.ljust(within, b"\0"))
        block[within:within + len(chunk)] = chunk
        self._shadow[page] = bytes(block)
        self.store.write(page)

    def _block_bytes(self, inode: Inode, block_idx: int) -> bytes:
        if block_idx >= len(inode.blocks) or inode.blocks[block_idx] is None:
            return b"\0" * self.block_bytes
        raw = self._shadow.get(inode.blocks[block_idx], b"")
        return raw.ljust(self.block_bytes, b"\0")

    def _trim_page(self, page: int) -> None:
        self.store.trim(page)
        self._shadow.pop(page, None)
        self._free_pages.append(page)

    # -- introspection ---------------------------------------------------------

    @property
    def write_amplification(self) -> float:
        """Cleaning writes per file-block write, since mount."""
        return self.store.stats.write_amplification

    def df(self) -> Dict[str, float]:
        """Device occupancy (like ``df``)."""
        cfg = self.store.config
        live = sum(self.store.segments.live_units)
        if self.store.buffer is not None:
            live += self.store.buffer.used_units
        return {
            "files": len(self._inodes),
            "used_blocks": live,
            "device_blocks": cfg.device_units,
            "utilization": live / cfg.device_units,
        }

    def check_consistency(self) -> None:
        """Every allocated block maps to a live store page and pages are
        never shared between files (test/debug aid)."""
        seen = set()
        for inode in self._inodes.values():
            for page in inode.blocks:
                if page is None:
                    continue
                assert page not in seen, "block shared between files"
                seen.add(page)
                seg, _ = self.store.pages.location(page)
                assert seg != -1, "file block lost by the store"
        self.store.check_invariants()
