"""Experiment harness: simulation driver and table/series formatting."""

from repro.bench.experiments import (
    ExperimentOutput,
    ablation_batch_experiment,
    ablation_estimator_experiment,
    demo_experiment,
    fig3_experiment,
    fig4_experiment,
    fig5_experiment,
    fig6_experiment,
    make_workload,
    table1_experiment,
    table2_experiment,
)
from repro.bench.charts import bar_chart, line_plot
from repro.bench.runner import (
    SimulationResult,
    drive,
    observed_runner,
    prepare_store,
    run_simulation,
    run_until_converged,
    sweep,
)
from repro.bench.tables import banner, format_series, format_table

__all__ = [
    "ExperimentOutput",
    "SimulationResult",
    "ablation_batch_experiment",
    "ablation_estimator_experiment",
    "bar_chart",
    "demo_experiment",
    "line_plot",
    "make_workload",
    "fig3_experiment",
    "fig4_experiment",
    "fig5_experiment",
    "fig6_experiment",
    "table1_experiment",
    "table2_experiment",
    "banner",
    "drive",
    "format_series",
    "format_table",
    "observed_runner",
    "prepare_store",
    "run_simulation",
    "run_until_converged",
    "sweep",
]
