"""Hot-path profiling harness (``repro bench profile``).

Answers "where does simulation time actually go?" with three separately
profiled phases, one per hot path the perf work targets:

* ``write_batch`` — the vectorized write engine end to end (including
  the cleaning cycles it triggers), driven by a fixed-seed update
  stream;
* ``clean_step``  — incremental cleaning cycles in isolation
  (``clean_begin`` + bounded ``clean_step`` drains), with the re-dirtying
  writes between cycles excluded from the profile;
* ``rank_columns`` — the policy's victim scoring over all sealed
  segments, repeated enough times to register.

Each phase yields a ranked-by-cumulative-time function table.  The JSON
artifact (``benchmarks/results/PROFILE_store.json``) is committed so the
profile that motivated an optimization stays reviewable next to the
benchmark numbers it moved; the top-N table prints for humans.

The profiler observes but does not gate: regressions are caught by the
benchmark baselines (``BENCH_store.json`` and friends), not by profile
shape.
"""

from __future__ import annotations

import cProfile
import json
import os
import pstats
import time
from typing import Dict, List, Optional

import numpy as np

from repro.bench.micro import BATCH_SIZE, MICRO_GRID, micro_workload
from repro.policies import make_policy
from repro.store import LogStructuredStore, SEALED, StoreConfig
from repro.store.errors import StoreError
from repro.store.kernels import kernel_info

#: Default artifact location (committed to the repository).
PROFILE_PATH = "benchmarks/results/PROFILE_store.json"

_DEFAULT_WRITES = 120_000
_QUICK_WRITES = 30_000

#: Pages relocated per clean_step call in the incremental phase — the
#: preemptible-cleaner default order of magnitude.
_STEP_PAGES = 256

#: Incremental cycles profiled in the clean_step phase.
_CLEAN_CYCLES = 40

#: rank_columns invocations profiled (one call is microseconds).
_RANK_ITERATIONS = 2_000


def _ranked_functions(profiler: cProfile.Profile, top: int) -> List[Dict]:
    """The profile's functions ranked by cumulative time, top N."""
    stats = pstats.Stats(profiler)
    rows: List[Dict] = []
    for (filename, line, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append(
            {
                "function": "%s:%d(%s)" % (os.path.basename(filename), line, func),
                "ncalls": int(nc),
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    rows.sort(key=lambda r: (-r["cumtime_s"], r["function"]))
    return rows[:top]


def _build_store(policy: str, seed: int) -> LogStructuredStore:
    config = StoreConfig(seed=seed, **MICRO_GRID)
    store = LogStructuredStore(config, make_policy(policy))
    store.load_sequential(config.user_pages)
    return store


def run_profile(
    n_writes: int = _DEFAULT_WRITES,
    seed: int = 0,
    policy: str = "greedy",
    workload: str = "zipfian",
    top: int = 15,
) -> Dict:
    """Profile the three hot paths; returns the report dict."""
    config = StoreConfig(seed=seed, **MICRO_GRID)
    pids = micro_workload(workload, config.user_pages, n_writes, seed)
    phases: Dict[str, Dict] = {}

    # -- phase 1: the vectorized write path, end to end ----------------
    store = _build_store(policy, seed)
    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    for start in range(0, pids.size, BATCH_SIZE):
        store.write_batch(pids[start : start + BATCH_SIZE])
    profiler.disable()
    phases["write_batch"] = {
        "wall_s": round(time.perf_counter() - t0, 6),
        "writes": int(pids.size),
        "top": _ranked_functions(profiler, top),
    }

    # -- phase 2: incremental cleaning in isolation --------------------
    # The store arrives at steady state from phase 1; each profiled
    # cycle is clean_begin + bounded clean_step drains, and the writes
    # that re-dirty the store between cycles stay outside the profile.
    chunk = pids[: max(BATCH_SIZE, pids.size // 8)]
    profiler = cProfile.Profile()
    cycles = 0
    profiled = 0.0
    for _ in range(_CLEAN_CYCLES):
        if not (store.segments.state == SEALED).any():
            break
        t0 = time.perf_counter()
        try:
            profiler.enable()
            store.clean_begin()
            while store.clean_pending:
                store.clean_step(_STEP_PAGES)
            profiler.disable()
        except StoreError:
            profiler.disable()
            break
        profiled += time.perf_counter() - t0
        cycles += 1
        store.write_batch(chunk)  # re-dirty, unprofiled
    phases["clean_step"] = {
        "wall_s": round(profiled, 6),
        "cycles": cycles,
        "step_pages": _STEP_PAGES,
        "top": _ranked_functions(profiler, top),
    }

    # -- phase 3: victim scoring -----------------------------------------
    segs = store.segments
    sealed_ids = np.flatnonzero(segs.state == SEALED).astype(np.int64)
    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    for _ in range(_RANK_ITERATIONS):
        store.policy.rank_columns(segs, sealed_ids)
    profiler.disable()
    phases["rank_columns"] = {
        "wall_s": round(time.perf_counter() - t0, 6),
        "iterations": _RANK_ITERATIONS,
        "candidates": int(sealed_ids.size),
        "top": _ranked_functions(profiler, top),
    }

    return {
        "benchmark": "store-profile",
        "grid": dict(MICRO_GRID),
        "policy": policy,
        "workload": workload,
        "writes": n_writes,
        "seed": seed,
        "batch_size": BATCH_SIZE,
        "kernel": kernel_info(),
        "phases": phases,
    }


def render_profile(report: Dict) -> str:
    """The top-N tables, one block per phase."""
    lines = [
        "hot-path profile (policy=%s, workload=%s, %d writes, kernel=%s):"
        % (
            report["policy"],
            report["workload"],
            report["writes"],
            report["kernel"]["active"],
        )
    ]
    for phase, cell in report["phases"].items():
        lines.append("")
        lines.append("%s (%.3fs):" % (phase, cell["wall_s"]))
        lines.append(
            "  %9s %10s %10s  %s" % ("ncalls", "tottime", "cumtime", "function")
        )
        for row in cell["top"]:
            lines.append(
                "  %9d %9.3fs %9.3fs  %s"
                % (
                    row["ncalls"],
                    row["tottime_s"],
                    row["cumtime_s"],
                    row["function"],
                )
            )
    return "\n".join(lines)


def write_profile(report: Dict, path: str = PROFILE_PATH) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
