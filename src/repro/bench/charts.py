"""Terminal charts for experiment output.

The benchmarks print numeric tables (the ground truth for
EXPERIMENTS.md); these helpers add a quick visual read — horizontal bar
charts and multi-series line plots rendered in plain ASCII — so a figure
of the paper can be eyeballed straight from a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

_BAR = "#"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bars, one per label, scaled to the maximum value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("nothing to chart")
    if any(v < 0 for v in values):
        raise ValueError("bar charts require non-negative values")
    peak = max(values) or 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = _BAR * max(1 if value > 0 else 0, round(width * value / peak))
        lines.append(
            "%s  %s %.3f%s" % (str(label).rjust(label_w), bar.ljust(width), value, unit)
        )
    return "\n".join(lines)


def line_plot(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
    title: str = "",
) -> str:
    """A multi-series scatter/line plot on a character grid.

    Each series is drawn with its own marker (first letter of its name,
    uppercased; collisions fall back to digits).  The y-axis is linear
    from 0 to the global maximum.
    """
    if not series:
        raise ValueError("no series to plot")
    n = len(x_values)
    if n < 2:
        raise ValueError("need at least two x values")
    for name, ys in series.items():
        if len(ys) != n:
            raise ValueError("series %r length mismatch" % name)
    peak = max(max(ys) for ys in series.values()) or 1.0
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    markers = {}
    used = set()
    fallback = iter("0123456789*+@%&")
    for name in series:
        mark = name[0].upper()
        if mark in used:
            mark = next(fallback)
        used.add(mark)
        markers[name] = mark
    x_lo, x_hi = min(x_values), max(x_values)
    span = (x_hi - x_lo) or 1.0
    for name, ys in series.items():
        mark = markers[name]
        for x, y in zip(x_values, ys):
            col = round((x - x_lo) / span * (width - 1))
            row = height - 1 - round(min(y, peak) / peak * (height - 1))
            grid[row][col] = mark
    lines = [title] if title else []
    for i, row in enumerate(grid):
        y_label = peak * (height - 1 - i) / (height - 1)
        lines.append("%8.3f |%s" % (y_label, "".join(row)))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10 + str(x_lo) + str(x_hi).rjust(width - len(str(x_lo))))
    legend = "  ".join("%s=%s" % (markers[k], k) for k in series)
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
