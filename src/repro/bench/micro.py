"""Write-engine microbenchmark: the scalar vs vectorized write paths.

``repro bench micro`` drives fixed-seed uniform / hot-cold / Zipfian
update streams through both :meth:`~repro.store.LogStructuredStore.write`
(one page at a time) and :meth:`~repro.store.LogStructuredStore.write_batch`
(the vectorized run engine) on the fig5 quick grid, and reports

* writes/sec for each path (the headline: batch over scalar),
* cleaning cycles/sec and the p50/p95 cleaning-cycle latency,

as both a human-readable table and a JSON report (``BENCH_store.json``)
committed to the repository so the performance trajectory is tracked
across changes.  ``--check`` compares a fresh run against a committed
baseline and fails on regression — the CI perf-smoke gate.

Timing protocol: each (workload, path) cell runs ``trials`` times and
keeps the fastest wall clock — the minimum is the estimator least
sensitive to scheduler noise, which on shared CI boxes dwarfs the
run-to-run variance of the simulator itself.  The two paths replay the
identical update stream from the identical seed, so they do identical
simulation work (the differential tests pin the final states to be
byte-identical) and the ratio isolates interpreter overhead.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.policies import make_policy
from repro.store import LogStructuredStore, StoreConfig

#: The fig5 quick grid — the geometry the policy-comparison experiment
#: runs at, so micro numbers predict experiment wall clock.
MICRO_GRID = dict(
    n_segments=512,
    segment_units=64,
    fill_factor=0.8,
    clean_trigger=4,
    clean_batch=8,
)

#: The three synthetic update streams the paper's experiments use.
MICRO_WORKLOADS = ("uniform", "hotcold", "zipfian")

#: Client batch size for the vectorized path (one ``write_batch`` call
#: per this many updates).
BATCH_SIZE = 4096

_DEFAULT_WRITES = 200_000
_QUICK_WRITES = 60_000


def micro_workload(name: str, n_pages: int, n_writes: int, seed: int) -> np.ndarray:
    """The fixed-seed update stream for one workload family."""
    rng = np.random.default_rng(seed + 0x5EED)
    if name == "uniform":
        pids = rng.integers(0, n_pages, size=n_writes)
    elif name == "hotcold":
        # 90% of updates to the hottest 10% of pages.
        hot = max(1, n_pages // 10)
        coin = rng.random(n_writes) < 0.9
        pids = np.where(
            coin,
            rng.integers(0, hot, size=n_writes),
            rng.integers(hot, n_pages, size=n_writes),
        )
    elif name == "zipfian":
        ranks = rng.zipf(1.2, size=n_writes)
        pids = np.minimum(ranks - 1, n_pages - 1)
    else:
        raise ValueError("unknown micro workload %r" % (name,))
    return np.ascontiguousarray(pids, dtype=np.int64)


def _build_store(policy: str, seed: int) -> LogStructuredStore:
    config = StoreConfig(seed=seed, **MICRO_GRID)
    store = LogStructuredStore(config, make_policy(policy))
    store.load_sequential(config.user_pages)
    return store


def _timed_pass(
    store: LogStructuredStore, pids: np.ndarray, batch: bool
) -> Dict[str, float]:
    """Apply the update stream, timing the whole pass and every cleaning
    cycle inside it."""
    cycle_times: List[float] = []
    orig_clean = store.clean

    def timed_clean(n_victims=None):
        t0 = time.perf_counter()
        reclaimed = orig_clean(n_victims)
        cycle_times.append(time.perf_counter() - t0)
        return reclaimed

    store.clean = timed_clean  # instance attribute shadows the method
    try:
        t0 = time.perf_counter()
        if batch:
            for start in range(0, pids.size, BATCH_SIZE):
                store.write_batch(pids[start : start + BATCH_SIZE])
        else:
            write = store.write
            for pid in pids.tolist():
                write(pid)
        wall = time.perf_counter() - t0
    finally:
        del store.clean
    cycles = np.asarray(cycle_times, dtype=np.float64)
    out = {
        "wall_s": wall,
        "writes_per_sec": pids.size / wall,
        "clean_cycles": int(cycles.size),
        "clean_cycles_per_sec": cycles.size / wall,
    }
    if cycles.size:
        out["cycle_p50_ms"] = float(np.percentile(cycles, 50) * 1e3)
        out["cycle_p95_ms"] = float(np.percentile(cycles, 95) * 1e3)
    else:
        out["cycle_p50_ms"] = 0.0
        out["cycle_p95_ms"] = 0.0
    return out


def _best_of_paired(
    trials: int,
    scalar_factory: Callable[[], Dict[str, float]],
    batch_factory: Callable[[], Dict[str, float]],
) -> "tuple[Dict[str, float], Dict[str, float]]":
    """Fastest wall clock per path, with the two paths' trials
    interleaved so slow drift of the host (frequency scaling, a noisy
    neighbour) hits both paths alike instead of biasing the ratio."""
    best_scalar: Optional[Dict[str, float]] = None
    best_batch: Optional[Dict[str, float]] = None
    for _ in range(trials):
        scalar = scalar_factory()
        if best_scalar is None or scalar["wall_s"] < best_scalar["wall_s"]:
            best_scalar = scalar
        batch = batch_factory()
        if best_batch is None or batch["wall_s"] < best_batch["wall_s"]:
            best_batch = batch
    return best_scalar, best_batch


def run_micro(
    n_writes: int = _DEFAULT_WRITES,
    trials: int = 3,
    seed: int = 0,
    policy: str = "greedy",
    workloads=MICRO_WORKLOADS,
    profile_path: Optional[str] = None,
) -> Dict:
    """Run the full scalar-vs-batch grid; returns the report dict."""
    report: Dict = {
        "benchmark": "store-micro",
        "grid": dict(MICRO_GRID),
        "policy": policy,
        "writes": n_writes,
        "trials": trials,
        "seed": seed,
        "batch_size": BATCH_SIZE,
        "workloads": {},
    }
    n_pages = StoreConfig(seed=seed, **MICRO_GRID).user_pages
    for name in workloads:
        pids = micro_workload(name, n_pages, n_writes, seed)

        def scalar_pass():
            return _timed_pass(_build_store(policy, seed), pids, batch=False)

        def batch_pass():
            return _timed_pass(_build_store(policy, seed), pids, batch=True)

        scalar, batch = _best_of_paired(trials, scalar_pass, batch_pass)
        report["workloads"][name] = {
            "scalar": scalar,
            "batch": batch,
            "speedup": batch["writes_per_sec"] / scalar["writes_per_sec"],
        }
    if profile_path:
        import cProfile

        store = _build_store(policy, seed)
        pids = micro_workload(workloads[0], n_pages, n_writes, seed)
        profiler = cProfile.Profile()
        profiler.enable()
        for start in range(0, pids.size, BATCH_SIZE):
            store.write_batch(pids[start : start + BATCH_SIZE])
        profiler.disable()
        profiler.dump_stats(profile_path)
        report["profile"] = profile_path
    return report


def render_micro(report: Dict) -> str:
    """The human-readable table for one report."""
    lines = [
        "store micro-benchmark (policy=%s, %d writes, best of %d):"
        % (report["policy"], report["writes"], report["trials"]),
        "%-10s %12s %12s %8s %12s %10s %10s"
        % (
            "workload", "scalar w/s", "batch w/s", "speedup",
            "cleans/s", "p50 ms", "p95 ms",
        ),
    ]
    for name, cell in report["workloads"].items():
        batch = cell["batch"]
        lines.append(
            "%-10s %12.0f %12.0f %7.2fx %12.1f %10.3f %10.3f"
            % (
                name,
                cell["scalar"]["writes_per_sec"],
                batch["writes_per_sec"],
                cell["speedup"],
                batch["clean_cycles_per_sec"],
                batch["cycle_p50_ms"],
                batch["cycle_p95_ms"],
            )
        )
    return "\n".join(lines)


def check_against_baseline(
    report: Dict, baseline: Dict, tolerance: float = 0.30
) -> List[str]:
    """Regression check: batch writes/sec per workload vs the committed
    baseline.  Returns the list of violations (empty = pass).

    Absolute rates vary across machines; the tolerance absorbs that for
    same-class runners, and the CI label escape hatch covers intentional
    changes or slower hardware.
    """
    problems: List[str] = []
    for name, base_cell in baseline.get("workloads", {}).items():
        if name not in report["workloads"]:
            continue
        base_rate = base_cell["batch"]["writes_per_sec"]
        cur_rate = report["workloads"][name]["batch"]["writes_per_sec"]
        floor = base_rate * (1.0 - tolerance)
        if cur_rate < floor:
            problems.append(
                "%s: batch %.0f writes/s is more than %.0f%% below the "
                "baseline %.0f writes/s"
                % (name, cur_rate, tolerance * 100.0, base_rate)
            )
    return problems


def write_report(report: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> Dict:
    with open(path) as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# Benchmark history (benchmarks/history.jsonl)
# ----------------------------------------------------------------------

# The shared trajectory helpers live in repro.bench.history; the legacy
# names are re-exported because the other benchmark modules (and older
# scripts) import them from here.
from repro.bench.history import (  # noqa: E402
    HISTORY_PATH,
    append_entry,
    git_sha as _git_sha,
    load_history,
)


def history_entry(report: Dict, sha: Optional[str] = None) -> Dict:
    """One history line: the commit plus each workload's headline rates
    (batch/scalar writes per second and the speedup)."""
    entry: Dict = {
        "sha": sha if sha is not None else _git_sha(),
        "benchmark": report.get("benchmark", "store-micro"),
        "policy": report.get("policy"),
        "writes": report.get("writes"),
        "trials": report.get("trials"),
        "workloads": {},
    }
    for name, cell in report.get("workloads", {}).items():
        entry["workloads"][name] = {
            "batch_writes_per_sec": cell["batch"]["writes_per_sec"],
            "scalar_writes_per_sec": cell["scalar"]["writes_per_sec"],
            "speedup": cell["speedup"],
            "cycle_p95_ms": cell["batch"]["cycle_p95_ms"],
        }
    return entry


def append_history(
    report: Dict, path: str = HISTORY_PATH, sha: Optional[str] = None
) -> Dict:
    """Append the report's :func:`history_entry` to the JSONL benchmark
    trajectory; returns the appended entry."""
    return append_entry(history_entry(report, sha=sha), path)
