"""Plain-text rendering of experiment tables and figure series.

The benchmarks print the same rows/series the paper reports; these
helpers keep the formatting uniform (fixed-width columns, one experiment
banner per table) so EXPERIMENTS.md can quote the output verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Cell = Union[str, float, int]


def format_cell(value: Cell, precision: int = 3) -> str:
    """Render one table cell (floats to ``precision``, NaN as a dash)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return "%.*f" % (precision, value)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render an aligned plain-text table."""
    rendered = [[format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Cell],
    series: Dict[str, Sequence[float]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render figure-style data: one column per x value, one row per
    named series (the same layout as reading points off the paper's
    plots)."""
    headers = [x_label] + [format_cell(x, precision) for x in x_values]
    rows: List[List[Cell]] = []
    for name, values in series.items():
        rows.append([name] + list(values))
    return format_table(headers, rows, title=title, precision=precision)


def banner(text: str) -> str:
    """A boxed section header for experiment logs."""
    bar = "=" * max(60, len(text) + 4)
    return "%s\n  %s\n%s" % (bar, text, bar)
