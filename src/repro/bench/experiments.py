"""The paper's experiments as parameterized functions.

One function per table/figure; ``benchmarks/bench_*.py`` and the CLI are
thin wrappers around these.  Every function returns plain data plus a
rendered plain-text table so EXPERIMENTS.md can quote output verbatim.

Scaled defaults (see DESIGN.md): the devices are a few hundred to a
thousand segments instead of the paper's 51,200, with cleaning trigger
and batch scaled to keep their ratios; footnote 2 of the paper notes
absolute size does not affect write amplification, and the deviations
that *do* appear at small scale are recorded in EXPERIMENTS.md.

Every experiment function accepts an optional ``runner`` argument with
the signature of :func:`repro.bench.runner.run_simulation`.  The default
runs each simulation inline; ``repro.sweep`` injects recording/replaying
runners to expand the same loops into a parallel job grid and then
aggregate the results through this exact code path, which is what makes
serial and swept outputs byte-identical.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis import fixpoint, hotcold
from repro.bench.runner import run_simulation
from repro.bench.tables import format_series, format_table
from repro.policies import FIGURE3_POLICIES, FIGURE5_POLICIES
from repro.store import StoreConfig
from repro.tpcc import TpccScale, generate_tpcc_trace
from repro.workloads import (
    HotColdWorkload,
    UniformWorkload,
    ZipfianWorkload,
)

#: Figure 5's x-axis.
FIGURE5_FILLS = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95)
#: Figure 6's x-axis.
FIGURE6_FILLS = (0.5, 0.6, 0.7, 0.8)
#: Figure 3's x-axis (skew m of the m:1-m hot-cold distribution).
FIGURE3_SKEWS = (50, 60, 70, 80, 90)
#: Figure 4's x-axis, rescaled to our device (the paper sweeps up to
#: 1024 of 51,200 segments = 2 %; 16 of 512 is 3 %, and 64 saturates).
FIGURE4_BUFFERS = (0, 1, 4, 16, 64)

#: Default sort-buffer for the separating MDC variants in comparative
#: figures (Figure 4 shows 16 segments is already near-optimal).
DEFAULT_SORT_BUFFER = 16


@dataclasses.dataclass(frozen=True)
class ExperimentOutput:
    """Data plus its paper-style rendering."""

    name: str
    rendered: str
    data: Dict

    def __str__(self) -> str:
        return self.rendered


def _standard_config(fill: float, sort_buffer: int) -> StoreConfig:
    return StoreConfig(
        n_segments=512,
        segment_units=64,
        fill_factor=fill,
        clean_trigger=4,
        clean_batch=8,
        sort_buffer_segments=sort_buffer,
    )


def make_workload(dist: str, n_pages: int, seed: int):
    """Build a workload from its distribution shorthand (``"uniform"``,
    ``"zipf-80-20"``, ``"zipf-90-10"``, ``"hotcold-<m>"``)."""
    if dist == "uniform":
        return UniformWorkload(n_pages, seed=seed)
    if dist == "zipf-80-20":
        return ZipfianWorkload.eighty_twenty(n_pages, seed=seed)
    if dist == "zipf-90-10":
        return ZipfianWorkload.ninety_ten(n_pages, seed=seed)
    if dist.startswith("hotcold-"):
        return HotColdWorkload.from_skew(n_pages, int(dist.split("-")[1]), seed=seed)
    raise ValueError("unknown distribution %r" % (dist,))


#: Backwards-compatible alias (the CLI used the private name pre-sweep).
_make_workload = make_workload

#: Signature shared by :func:`repro.bench.runner.run_simulation` and the
#: recording/replaying runners that ``repro.sweep`` injects.
Runner = Callable[..., "SimulationResult"]


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------

def table1_experiment(
    fill_factors: Sequence[float] = fixpoint.TABLE1_FILL_FACTORS,
    write_multiplier: float = 8.0,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> ExperimentOutput:
    """Table 1: the age-based fixpoint analysis next to simulation
    under a uniform distribution.

    Two simulated columns: age-based cleaning (the circular-buffer model
    Equation 4 is derived for — the direct validation) and MDC-opt (the
    paper's column; on a small device its greedy-equivalent victim order
    skims the emptiness distribution's tail, so it sits slightly above
    the fixpoint — see EXPERIMENTS.md).

    Uses a reserve-compensated 1024x32 device so the standing free pool
    does not bite into the slack that the analysis assumes is all
    user-visible.
    """
    run = runner or run_simulation
    rows = []
    for f in fill_factors:
        analysis = fixpoint.table1_row(f)
        sims = {}
        for policy in ("age", "mdc-opt"):
            cfg = StoreConfig(
                n_segments=1024, segment_units=32, fill_factor=f,
                clean_trigger=2, clean_batch=4,
            ).with_reserve_compensation()
            wl = UniformWorkload(cfg.user_pages, seed=seed)
            sims[policy] = run(
                cfg, policy, wl, write_multiplier=write_multiplier
            )
        rows.append(
            (
                f,
                round(1.0 - f, 3),
                analysis.emptiness,
                sims["age"].mean_cleaned_emptiness,
                sims["mdc-opt"].mean_cleaned_emptiness,
                analysis.cost,
                analysis.ratio,
                analysis.wamp,
                sims["age"].wamp,
            )
        )
    rendered = format_table(
        [
            "F", "1-F", "E", "age-sim", "MDC-opt",
            "Cost", "R=E/(1-F)", "Wamp", "Wamp-sim",
        ],
        rows,
        title="Table 1: fill factor vs segment emptiness when cleaned "
        "(Equation 4 analysis vs simulated age and MDC-opt, uniform updates)",
    )
    return ExperimentOutput("table1", rendered, {"rows": rows})


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------

def table2_experiment(
    skews: Sequence[int] = hotcold.TABLE2_SKEWS,
    fill_factor: float = 0.8,
    write_multiplier: float = 30.0,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> ExperimentOutput:
    """Table 2: analytic minimum cost of separated hot/cold management
    vs simulated MDC-opt, at F = 0.8."""
    run = runner or run_simulation
    rows = []
    for m in skews:
        analysis = hotcold.table2_row(m, fill_factor)
        cfg = _standard_config(fill_factor, DEFAULT_SORT_BUFFER)
        wl = HotColdWorkload.from_skew(cfg.user_pages, m, seed=seed)
        sim = run(cfg, "mdc-opt", wl, write_multiplier=write_multiplier)
        sim_cost = 2.0 * (1.0 + sim.wamp)  # Cost = 2/E = 2 (1 + Wamp)
        rows.append(
            (
                fill_factor,
                "%d:%d" % (m, 100 - m),
                analysis.min_cost,
                analysis.cost_hot_60,
                analysis.cost_hot_40,
                sim_cost,
            )
        )
    rendered = format_table(
        ["F", "Cold-Hot", "MinCost", "Hot:60%", "Hot:40%", "MDC-opt(sim)"],
        rows,
        title="Table 2: minimum cost when managing hot and cold data "
        "separately (analysis vs simulated MDC-opt)",
    )
    return ExperimentOutput("table2", rendered, {"rows": rows})


# ----------------------------------------------------------------------
# Figure 3
# ----------------------------------------------------------------------

def fig3_experiment(
    skews: Sequence[int] = FIGURE3_SKEWS,
    policies: Sequence[str] = tuple(FIGURE3_POLICIES),
    fill_factor: float = 0.8,
    write_multiplier: float = 30.0,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> ExperimentOutput:
    """Figure 3: the MDC ablation breakdown on hot-cold distributions,
    plus the analytic ``opt`` series."""
    run = runner or run_simulation
    series: Dict[str, List[float]] = {name: [] for name in policies}
    series["opt"] = []
    for m in skews:
        for name in policies:
            cfg = _standard_config(fill_factor, DEFAULT_SORT_BUFFER)
            wl = HotColdWorkload.from_skew(cfg.user_pages, m, seed=seed)
            sim = run(cfg, name, wl, write_multiplier=write_multiplier)
            series[name].append(sim.wamp)
        series["opt"].append(hotcold.opt_wamp(m, fill_factor))
    x_labels = ["%d-%d" % (m, 100 - m) for m in skews]
    rendered = format_series(
        "skewness",
        x_labels,
        series,
        title="Figure 3: write amplification vs hot-cold skew (F=%.1f)"
        % fill_factor,
    )
    return ExperimentOutput(
        "fig3", rendered, {"skews": list(skews), "series": series}
    )


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------

def fig4_experiment(
    buffer_sizes: Sequence[int] = FIGURE4_BUFFERS,
    fill_factor: float = 0.8,
    write_multiplier: float = 30.0,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> ExperimentOutput:
    """Figure 4: MDC write amplification vs sort-buffer size on the
    80-20 Zipfian distribution."""
    run = runner or run_simulation
    wamps = []
    for size in buffer_sizes:
        cfg = _standard_config(fill_factor, size)
        wl = ZipfianWorkload.eighty_twenty(cfg.user_pages, seed=seed)
        sim = run(cfg, "mdc", wl, write_multiplier=write_multiplier)
        wamps.append(sim.wamp)
    rendered = format_series(
        "buffer(segments)",
        list(buffer_sizes),
        {"mdc": wamps},
        title="Figure 4: cleaning impact of sort buffer size "
        "(80-20 Zipfian, F=%.1f)" % fill_factor,
    )
    return ExperimentOutput(
        "fig4", rendered, {"buffers": list(buffer_sizes), "wamp": wamps}
    )


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------

def fig5_experiment(
    dist: str,
    fills: Sequence[float] = FIGURE5_FILLS,
    policies: Sequence[str] = tuple(FIGURE5_POLICIES),
    write_multiplier: float = 25.0,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> ExperimentOutput:
    """Figure 5(a/b/c): write amplification vs fill factor for all
    seven cleaning algorithms under one distribution.

    An extra ``opt-bound`` series extends the paper: the analytic
    k-population separation lower bound of
    :func:`repro.analysis.distribution_opt_wamp` evaluated on the same
    distribution (the Figure 3 "opt" generalized beyond hot-cold).
    Simulated values with a large sort buffer can dip slightly below it
    because RAM absorption of hot rewrites is outside the model.
    """
    from repro.analysis import distribution_opt_wamp

    run = runner or run_simulation
    series: Dict[str, List[float]] = {name: [] for name in policies}
    series["opt-bound"] = []
    for f in fills:
        for name in policies:
            cfg = _standard_config(f, DEFAULT_SORT_BUFFER)
            wl = make_workload(dist, cfg.user_pages, seed)
            sim = run(cfg, name, wl, write_multiplier=write_multiplier)
            series[name].append(sim.wamp)
        reference = make_workload(
            dist, _standard_config(f, 0).user_pages, seed
        )
        series["opt-bound"].append(
            distribution_opt_wamp(reference.frequencies(), f, k=16)
        )
    rendered = format_series(
        "fill factor",
        list(fills),
        series,
        title="Figure 5 (%s): write amplification vs fill factor" % dist,
    )
    return ExperimentOutput(
        "fig5-%s" % dist,
        rendered,
        {"dist": dist, "fills": list(fills), "series": series},
    )


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------

def fig6_experiment(
    fills: Sequence[float] = FIGURE6_FILLS,
    policies: Sequence[str] = tuple(FIGURE5_POLICIES),
    scale: Optional[TpccScale] = None,
    measure_fraction: float = 0.75,
    seed: int = 0,
) -> ExperimentOutput:
    """Figure 6: write amplification on TPC-C traces vs fill factor.

    Traces are generated once per fill factor by running TPC-C on the
    B+-tree engine until the fill grows by 0.1 (the paper's procedure),
    then replayed once per policy.
    """
    series: Dict[str, List[float]] = {name: [] for name in policies}
    trace_meta = []
    for f in fills:
        trace = generate_tpcc_trace(f, scale=scale, seed=seed)
        trace_meta.append(
            {
                "fill": f,
                "final_fill": trace.final_fill,
                "writes": len(trace.workload),
                "transactions": trace.transactions,
            }
        )
        for name in policies:
            sort_buffer = DEFAULT_SORT_BUFFER if name.startswith("mdc") else 0
            cfg = trace.store_config(
                segment_units=32, sort_buffer_segments=sort_buffer
            )
            trace.workload.reset()
            sim = run_simulation(
                cfg,
                name,
                trace.workload,
                total_writes=len(trace.workload),
                measure_fraction=measure_fraction,
            )
            series[name].append(sim.wamp)
    rendered = format_series(
        "fill factor",
        list(fills),
        series,
        title="Figure 6: write amplification on TPC-C traces "
        "(B+-tree engine, scaled)",
    )
    return ExperimentOutput(
        "fig6",
        rendered,
        {"fills": list(fills), "series": series, "traces": trace_meta},
    )


# ----------------------------------------------------------------------
# Ablations (DESIGN.md "key design decisions")
# ----------------------------------------------------------------------

def ablation_estimator_experiment(
    dist: str = "zipf-80-20",
    fill_factor: float = 0.8,
    write_multiplier: float = 30.0,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> ExperimentOutput:
    """Section 4.3 ablation: the two-interval up2 estimator vs the
    single-interval up1 estimator vs the exact oracle."""
    run = runner or run_simulation
    wamps = {}
    for name in ("mdc-up1", "mdc", "mdc-opt"):
        cfg = _standard_config(fill_factor, DEFAULT_SORT_BUFFER)
        wl = make_workload(dist, cfg.user_pages, seed)
        sim = run(cfg, name, wl, write_multiplier=write_multiplier)
        wamps[name] = sim.wamp
    rendered = format_table(
        ["estimator", "Wamp"],
        [
            ("up1 (single interval)", wamps["mdc-up1"]),
            ("up2 (two intervals)", wamps["mdc"]),
            ("exact (oracle)", wamps["mdc-opt"]),
        ],
        title="Ablation: update-frequency estimator (%s, F=%.1f)"
        % (dist, fill_factor),
    )
    return ExperimentOutput("ablation-estimator", rendered, {"wamp": wamps})


def ablation_batch_experiment(
    batches: Sequence[int] = (1, 4, 16, 64),
    dist: str = "zipf-80-20",
    fill_factor: float = 0.8,
    write_multiplier: float = 30.0,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> ExperimentOutput:
    """Section 6.1.1 ablation: cleaning-batch size (batching amortizes
    policy evaluation and enables GC-write separation)."""
    run = runner or run_simulation
    wamps = []
    for batch in batches:
        cfg = StoreConfig(
            n_segments=512, segment_units=64, fill_factor=fill_factor,
            clean_trigger=4, clean_batch=batch,
            sort_buffer_segments=DEFAULT_SORT_BUFFER,
        )
        wl = make_workload(dist, cfg.user_pages, seed)
        sim = run(cfg, "mdc", wl, write_multiplier=write_multiplier)
        wamps.append(sim.wamp)
    rendered = format_series(
        "clean batch",
        list(batches),
        {"mdc": wamps},
        title="Ablation: cleaning batch size (%s, F=%.1f)" % (dist, fill_factor),
    )
    return ExperimentOutput(
        "ablation-batch", rendered, {"batches": list(batches), "wamp": wamps}
    )


# ----------------------------------------------------------------------
# Demo grid (sweep smoke test)
# ----------------------------------------------------------------------

def demo_experiment(
    skews: Sequence[int] = (60, 90),
    policies: Sequence[str] = ("greedy", "mdc"),
    fill_factor: float = 0.75,
    write_multiplier: float = 4.0,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> ExperimentOutput:
    """A deliberately tiny hot-cold grid (64 segments of 8 units, a few
    thousand writes per point) that finishes in well under a second.

    Not from the paper — it exists so the sweep orchestrator, its tests,
    and ``examples/sweep_quickstart.py`` have a grid whose full
    run/kill/resume cycle costs milliseconds.
    """
    run = runner or run_simulation
    series: Dict[str, List[float]] = {name: [] for name in policies}
    for m in skews:
        for name in policies:
            cfg = StoreConfig(
                n_segments=64, segment_units=8, fill_factor=fill_factor,
                clean_trigger=2, clean_batch=2,
            )
            wl = HotColdWorkload.from_skew(cfg.user_pages, m, seed=seed)
            sim = run(cfg, name, wl, write_multiplier=write_multiplier)
            series[name].append(sim.wamp)
    x_labels = ["%d-%d" % (m, 100 - m) for m in skews]
    rendered = format_series(
        "skewness",
        x_labels,
        series,
        title="Demo grid: write amplification vs hot-cold skew "
        "(tiny device, F=%.2f)" % fill_factor,
    )
    return ExperimentOutput(
        "demo", rendered, {"skews": list(skews), "series": series}
    )
