"""Write-amplification time series: convergence behaviour.

The paper makes two temporal claims its figures do not plot directly:

* multi-log "requires a lot of page writes to converge" because it
  starts with one log and adapts (Section 6.3's explanation for its
  TPC-C result);
* MDC needs no convergence period beyond filling the device, because
  its victim priority and sorting work from the first cleaning cycle.

This experiment measures both: Wamp per window of writes, from cold
start, for any policy line-up.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Union

from repro.bench.runner import prepare_store
from repro.bench.tables import format_series
from repro.policies.base import CleaningPolicy
from repro.store import StoreConfig
from repro.workloads import Workload


@dataclasses.dataclass(frozen=True)
class TimeSeries:
    """Windowed write-amplification curves per policy."""

    window_writes: int
    series: Dict[str, List[float]]

    def windows_to_converge(self, name: str, rel_tol: float = 0.1) -> int:
        """First window index from which Wamp stays within ``rel_tol``
        of the final value.  The last window qualifies trivially, so the
        result is at most ``len(curve) - 1``; a curve still oscillating
        returns exactly that."""
        curve = self.series[name]
        final = curve[-1]
        scale = max(abs(final), 1e-9)
        for i, value in enumerate(curve):
            if all(abs(v - final) / scale <= rel_tol for v in curve[i:]):
                return i
        return len(curve)

    def rendered(self, title: str = "") -> str:
        """Plain-text table of the curves (x axis = cumulative writes)."""
        xs = [
            (i + 1) * self.window_writes for i in range(len(next(iter(self.series.values()))))
        ]
        return format_series("writes", xs, self.series, title=title, precision=3)


def wamp_timeseries(
    config: StoreConfig,
    policies: Sequence[Union[str, CleaningPolicy]],
    workload_factory,
    n_windows: int = 20,
    window_multiplier: float = 2.0,
) -> TimeSeries:
    """Measure Wamp over consecutive windows from a cold start.

    Args:
        workload_factory: ``() -> Workload`` — a fresh stream per policy.
        n_windows: Number of measurement windows.
        window_multiplier: Window length as a multiple of the page
            population.
    """
    series: Dict[str, List[float]] = {}
    window_writes = None
    for policy in policies:
        workload: Workload = workload_factory()
        store = prepare_store(config, policy, workload)
        window_writes = max(1, int(window_multiplier * workload.n_pages))
        curve = []
        for _ in range(n_windows):
            mark = store.stats.snapshot()
            remaining = window_writes
            write = store.write
            for batch in workload.batches(window_writes):
                for pid in batch:
                    write(pid)
                remaining -= len(batch)
            curve.append(store.stats.window_since(mark).write_amplification)
        series[store.policy.name] = curve
    return TimeSeries(window_writes=window_writes, series=series)
