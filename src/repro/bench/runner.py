"""Simulation driver shared by benchmarks, examples, and the CLI.

Mirrors the paper's measurement procedure (Section 6.2): load the store
to its fill factor, stream many multiples of the device size worth of
updates so write amplification stabilizes, and report Wamp over the tail
window.  :func:`run_until_converged` adds an adaptive variant that keeps
adding rounds until consecutive windows agree, which matters for the
slow-converging policies (the paper calls out multi-log for needing
"many writes before converging").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Union

import numpy as np

from repro.policies import make_policy
from repro.policies.base import CleaningPolicy
from repro.store import LogStructuredStore, StoreConfig, WindowStats
from repro.workloads import Workload


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Outcome of one policy/workload/config simulation."""

    policy: str
    workload: str
    config: StoreConfig
    total_user_writes: int
    window: WindowStats
    extras: Dict[str, float]

    @property
    def wamp(self) -> float:
        """The paper's metric: cleaning writes per logical user write."""
        return self.window.write_amplification

    @property
    def device_wamp(self) -> float:
        """Cleaning writes per user write that reached the device."""
        return self.window.device_write_amplification

    @property
    def mean_cleaned_emptiness(self) -> float:
        """Average segment emptiness ``E`` at cleaning time."""
        return self.window.mean_cleaned_emptiness

    def summary(self) -> str:
        """One-line human-readable result."""
        return "%-22s %-18s Wamp=%.3f  E_cleaned=%.3f" % (
            self.policy,
            self.workload,
            self.wamp,
            self.mean_cleaned_emptiness,
        )


def _needs_oracle(policy: CleaningPolicy) -> bool:
    """The ``-opt`` variants consume exact frequencies."""
    return (
        getattr(policy, "estimator", None) == "exact"
        or getattr(policy, "exact", False) is True
    )


def prepare_store(
    config: StoreConfig,
    policy: Union[str, CleaningPolicy],
    workload: Workload,
) -> LogStructuredStore:
    """Build a store, install the oracle if the policy needs one, and run
    the initial sequential load of the workload's page population."""
    if isinstance(policy, str):
        policy = make_policy(policy)
    store = LogStructuredStore(config, policy)
    if _needs_oracle(policy):
        store.set_oracle_frequencies(workload.frequencies())
    store.load_sequential(workload.n_pages)
    return store


def drive(store: LogStructuredStore, workload: Workload, n_writes: int) -> None:
    """Apply ``n_writes`` workload updates to the store.

    Each workload batch goes through the vectorized
    :meth:`~repro.store.LogStructuredStore.write_batch` engine, which is
    state-identical to per-page :meth:`~repro.store.LogStructuredStore.write`
    (the testkit's differential tests pin this down) but several times
    faster.
    """
    remaining = n_writes
    obs = store.obs
    for batch in workload.batches(n_writes):
        store.write_batch(np.asarray(batch, dtype=np.int64))
        remaining -= len(batch)
        if obs is not None:
            obs.maybe_sample()
    assert remaining == 0


def run_simulation(
    config: StoreConfig,
    policy: Union[str, CleaningPolicy],
    workload: Workload,
    total_writes: Optional[int] = None,
    write_multiplier: float = 30.0,
    measure_fraction: float = 0.5,
    observe: Union[None, str, "MetricsWriter"] = None,
    sample_interval: Optional[int] = None,
    meta: Optional[Dict] = None,
) -> SimulationResult:
    """Fixed-length run: warm up, then measure Wamp over the tail.

    Args:
        total_writes: Updates to apply after the initial load; defaults
            to ``write_multiplier`` times the page population (the paper
            writes 100x the device size at full scale).
        measure_fraction: Fraction of the run, at the tail, over which
            write amplification is measured.
        observe: Attach a :class:`~repro.obs.StoreObserver` for the
            measured run and export its rows — a JSONL path, or a shared
            :class:`~repro.obs.MetricsWriter` (so an experiment's runs
            concatenate into one ``metrics.jsonl``).
        sample_interval: Time-series sample spacing in update ticks
            (default: a quarter of the page population).
        meta: Extra key/values merged into the exported ``meta`` row.
    """
    if not 0.0 < measure_fraction <= 1.0:
        raise ValueError("measure_fraction must be in (0, 1]")
    if isinstance(policy, str):
        policy = make_policy(policy)
    store = prepare_store(config, policy, workload)
    observer = None
    writer = None
    if observe is not None:
        from repro.obs import MetricsWriter, StoreObserver

        writer = (
            observe
            if isinstance(observe, MetricsWriter)
            else MetricsWriter(str(observe))
        )
        observer = StoreObserver(store, sample_interval=sample_interval)
        observer.attach()
        observer.sample_now()  # the post-load baseline row
    total = total_writes if total_writes is not None else int(
        write_multiplier * workload.n_pages
    )
    warmup = int(total * (1.0 - measure_fraction))
    try:
        drive(store, workload, warmup)
        mark = store.stats.snapshot()
        drive(store, workload, total - warmup)
        window = store.stats.window_since(mark)
        if observer is not None:
            observer.sample_now()  # the final row, whatever the clock
            run_meta = {
                "policy": policy.name,
                "workload": workload.name,
                "fill_factor": config.fill_factor,
                "n_segments": config.n_segments,
                "segment_units": config.segment_units,
                "total_writes": total,
                "wamp": window.write_amplification,
            }
            if meta:
                run_meta.update(meta)
            writer.write_rows(observer.rows(run_meta))
    finally:
        if observer is not None:
            observer.detach()
    return SimulationResult(
        policy=policy.name,
        workload=workload.name,
        config=config,
        total_user_writes=store.stats.user_writes,
        window=window,
        extras=_policy_extras(policy),
    )


def observed_runner(
    path: Union[str, "MetricsWriter"],
    sample_interval: Optional[int] = None,
    meta: Optional[Dict] = None,
):
    """A drop-in :func:`run_simulation` replacement that records every
    run it executes into one shared ``metrics.jsonl``.

    Experiment functions take a ``runner`` argument with
    :func:`run_simulation`'s signature; injecting this gives the whole
    experiment observability without touching its loop.
    """
    from repro.obs import MetricsWriter

    writer = path if isinstance(path, MetricsWriter) else MetricsWriter(str(path))

    def run(config, policy, workload, **kwargs):
        kwargs.setdefault("observe", writer)
        kwargs.setdefault("sample_interval", sample_interval)
        kwargs.setdefault("meta", meta)
        return run_simulation(config, policy, workload, **kwargs)

    run.writer = writer
    return run


def run_until_converged(
    config: StoreConfig,
    policy: Union[str, CleaningPolicy],
    workload: Workload,
    round_multiplier: float = 10.0,
    rel_tol: float = 0.02,
    max_rounds: int = 12,
    min_rounds: int = 3,
) -> SimulationResult:
    """Adaptive run: rounds of ``round_multiplier * pages`` writes until
    two consecutive rounds' Wamp agree within ``rel_tol``."""
    if isinstance(policy, str):
        policy = make_policy(policy)
    store = prepare_store(config, policy, workload)
    round_writes = max(1, int(round_multiplier * workload.n_pages))
    previous: Optional[WindowStats] = None
    window: Optional[WindowStats] = None
    for round_no in range(max_rounds):
        mark = store.stats.snapshot()
        drive(store, workload, round_writes)
        window = store.stats.window_since(mark)
        if previous is not None and round_no + 1 >= min_rounds:
            prev_w, cur_w = previous.write_amplification, window.write_amplification
            scale = max(cur_w, 1e-9)
            if abs(cur_w - prev_w) / scale <= rel_tol:
                break
        previous = window
    return SimulationResult(
        policy=policy.name,
        workload=workload.name,
        config=config,
        total_user_writes=store.stats.user_writes,
        window=window,
        extras=_policy_extras(policy),
    )


def _policy_extras(policy: CleaningPolicy) -> Dict[str, float]:
    extras: Dict[str, float] = {}
    n_logs = getattr(policy, "n_logs", None)
    if n_logs is not None:
        extras["n_logs"] = float(n_logs)
    return extras


def sweep(
    configs: List[StoreConfig],
    policy_names: List[str],
    workload_factory,
    **run_kwargs,
) -> List[SimulationResult]:
    """Cartesian sweep helper: one simulation per (config, policy).

    ``workload_factory(config)`` builds a fresh workload per run so
    policies never share generator state.
    """
    results = []
    for config in configs:
        for name in policy_names:
            workload = workload_factory(config)
            results.append(run_simulation(config, name, workload, **run_kwargs))
    return results
