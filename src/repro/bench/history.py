"""The shared benchmark-history trajectory (``benchmarks/history.jsonl``).

Every benchmark front-end (``repro bench micro`` / ``service`` /
``latency`` and ``repro serve``) appends one SHA-keyed JSONL row per run
through :func:`append_entry`, so the repository carries a single
perf-trend file that the matrix report (``repro bench run`` /
``repro bench report``) can plot and gate against.  Rows share three
common keys — ``sha`` (the commit), ``benchmark`` (the family name the
trend report groups by), and ``seed`` — and otherwise carry the
benchmark's own headline numbers.

This module is the one place that knows how entries are keyed and
appended; the per-benchmark ``*_history_entry`` builders live next to
their report formats (:mod:`repro.bench.micro`,
:mod:`repro.service.bench`, :mod:`repro.service.latency`).
"""

from __future__ import annotations

import json
import os
import subprocess
from typing import Dict, List

#: Where the benchmark commands append their headline numbers by default.
HISTORY_PATH = "benchmarks/history.jsonl"


def git_sha() -> str:
    """Short commit id keying a history entry: the working tree's HEAD,
    or ``GITHUB_SHA`` under CI, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    sha = os.environ.get("GITHUB_SHA", "")
    return sha[:12] if sha else "unknown"


def append_entry(entry: Dict, path: str = HISTORY_PATH) -> Dict:
    """Append one entry to the JSONL trajectory; returns the entry.

    Creates the parent directory on first use so a fresh checkout can
    start a trajectory without setup.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True))
        fh.write("\n")
    return entry


def load_history(path: str = HISTORY_PATH) -> List[Dict]:
    """Parse the benchmark trajectory (empty list when absent)."""
    if not os.path.exists(path):
        return []
    entries = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries
