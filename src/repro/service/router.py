"""Consistent-hash key routing with per-tenant keyspace affinity.

The router maps service keys to shard indices on a classic
virtual-node hash ring: every shard contributes ``replicas`` points
derived from a keyed blake2b hash, a key hashes to a point on the same
ring, and the key's shard is the owner of the first ring point at or
after the key's point (wrapping).  Two properties the service relies
on:

* **Determinism** — points depend only on ``(seed, shard, replica)``
  and key bytes; the same router parameters reproduce the same mapping
  in every process (``hashlib`` keyed hashing, never Python's
  randomized ``hash()``).
* **Monotone growth** — growing from ``n`` to ``n+1`` shards only adds
  ring points, so a key either keeps its shard or moves to the *new*
  shard; no key migrates between pre-existing shards.  This is what
  makes :meth:`repro.service.Service.scale_to` rebalancing cheap and
  testable.

Per-tenant keyspace affinity narrows where a tenant's keys may land:
with ``tenant_spread = w < 1``, tenant ``t``'s keys hash into a window
covering fraction ``w`` of a *coarse* ring (one point per shard),
anchored at a point derived from ``t`` alone.  The coarse ring matters:
on the virtual-node ring a ``w``-wide arc still contains vnodes of
nearly every shard, so a window there would not concentrate anything.
With one point per shard the window reaches about ``max(1, w * n)``
shards, so a tenant's working set concentrates on a few shards (cache
locality, per-tenant isolation) while distinct tenants anchor all over
the ring.  The trade-off is balance *within* a tenant — single-point
gaps are uneven — which is why affinity is opt-in and the harness
sizes shards from the actually-routed population.  ``w = 1`` recovers
uniform consistent hashing on the full virtual-node ring.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Optional, Tuple, Union

Key = Union[str, bytes, int, Tuple]

#: The ring is the space of 64-bit hash values.
RING_BITS = 64
RING_SIZE = 1 << RING_BITS


class RouterError(Exception):
    """Unroutable keys or invalid ring parameters."""


def encode_key(key: Key) -> bytes:
    """Canonical byte encoding of a service key.

    Type-tagged and length-prefixed so distinct keys never collide
    after encoding (``"1"`` vs ``1`` vs ``b"1"``, nested tuples), and
    stable across processes and platforms.
    """
    if isinstance(key, bytes):
        return b"b%d:" % len(key) + key
    if isinstance(key, bytearray):
        return b"b%d:" % len(key) + bytes(key)
    if isinstance(key, str):
        raw = key.encode("utf-8")
        return b"s%d:" % len(raw) + raw
    if isinstance(key, bool):
        # bool is an int subclass; reject it to keep encodings unambiguous.
        raise RouterError("bool is not a routable key type")
    if isinstance(key, int):
        raw = str(key).encode("ascii")
        return b"i%d:" % len(raw) + raw
    if isinstance(key, tuple):
        parts = [encode_key(part) for part in key]
        body = b"".join(parts)
        return b"t%d:" % len(body) + body
    raise RouterError(
        "keys must be str, bytes, int, or tuples thereof; got %s"
        % type(key).__name__
    )


def _hash64(salt: bytes, data: bytes) -> int:
    """64-bit keyed hash — the ring coordinate of ``data``."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8, key=salt).digest(), "big"
    )


class ConsistentHashRouter:
    """Virtual-node consistent-hash ring over ``n_shards`` shards.

    Args:
        n_shards: Number of shards (>= 1).
        replicas: Virtual nodes per shard; more replicas means a more
            even key split at the cost of a larger ring.
        seed: Ring seed; routers built with equal ``(n_shards,
            replicas, seed, tenant_spread)`` produce identical mappings.
        tenant_spread: Fraction of the ring a single tenant's keyspace
            covers (``(0, 1]``); 1.0 disables affinity.
    """

    def __init__(
        self,
        n_shards: int,
        replicas: int = 64,
        seed: int = 0,
        tenant_spread: float = 1.0,
    ) -> None:
        if n_shards < 1:
            raise RouterError("n_shards must be >= 1, got %d" % n_shards)
        if replicas < 1:
            raise RouterError("replicas must be >= 1, got %d" % replicas)
        if not 0.0 < tenant_spread <= 1.0:
            raise RouterError(
                "tenant_spread must be in (0, 1], got %r" % (tenant_spread,)
            )
        self.n_shards = n_shards
        self.replicas = replicas
        self.seed = seed
        self.tenant_spread = tenant_spread
        self._salt = b"repro.service.router:%d" % seed
        points: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for replica in range(replicas):
                point = _hash64(self._salt, b"vnode:%d:%d" % (shard, replica))
                points.append((point, shard))
        # Ties (astronomically unlikely at 64 bits) break toward the
        # lower shard id, deterministically, via the tuple sort.
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]
        # The coarse ring tenant-scoped lookups use: one point per
        # shard, so a spread-w window actually narrows the shard set.
        tpoints = sorted(
            (_hash64(self._salt, b"tnode:%d" % shard), shard)
            for shard in range(n_shards)
        )
        self._tpoints = [p for p, _ in tpoints]
        self._towners = [s for _, s in tpoints]

    # -- lookup ----------------------------------------------------------

    def shard_for(self, key: Key, tenant: Optional[Key] = None) -> int:
        """The shard owning ``key`` (within ``tenant``'s window when
        affinity is enabled)."""
        raw = _hash64(self._salt, b"key:" + encode_key(key))
        if tenant is None or self.tenant_spread >= 1.0:
            idx = bisect.bisect_left(self._points, raw)
            if idx == len(self._points):
                idx = 0  # wrap to the ring's first point
            return self._owners[idx]
        anchor = _hash64(self._salt, b"tenant:" + encode_key(tenant))
        width = int(self.tenant_spread * RING_SIZE)
        # The key's position inside the tenant's window, wrapping.
        point = (anchor + int(raw / RING_SIZE * width)) % RING_SIZE
        idx = bisect.bisect_left(self._tpoints, point)
        if idx == len(self._tpoints):
            idx = 0
        return self._towners[idx]

    def tenant_shards(self, tenant: Key, sample: int = 256) -> List[int]:
        """The shards a tenant's keyspace can reach, estimated by
        routing ``sample`` probe keys through the tenant window."""
        seen = set()
        for i in range(sample):
            seen.add(self.shard_for(b"probe:%d" % i, tenant=tenant))
        return sorted(seen)

    def grown(self, n_shards: int) -> "ConsistentHashRouter":
        """A router over more shards with the same ring parameters.

        Because growth only adds virtual nodes, every key either keeps
        its shard or moves to one of the new shards.
        """
        if n_shards < self.n_shards:
            raise RouterError(
                "cannot shrink a ring from %d to %d shards"
                % (self.n_shards, n_shards)
            )
        return ConsistentHashRouter(
            n_shards,
            replicas=self.replicas,
            seed=self.seed,
            tenant_spread=self.tenant_spread,
        )

    def __len__(self) -> int:
        return self.n_shards

    def __repr__(self) -> str:
        return (
            "<ConsistentHashRouter shards=%d replicas=%d seed=%d spread=%.2f>"
            % (self.n_shards, self.replicas, self.seed, self.tenant_spread)
        )
