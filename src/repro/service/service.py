"""The in-process service object: routed, batched, observable.

:class:`Service` is the store front-end the concurrent harness and the
``repro serve`` CLI drive: a :class:`~repro.service.pool.StorePool` of
KV shards behind a :class:`~repro.service.router.ConsistentHashRouter`,
with client writes coalesced by an
:class:`~repro.service.ingest.IngestQueue` and cleaning metered by the
pool's global slack budget.

Keys are namespaced per tenant — the stored key is the ``(tenant,
key)`` pair — so tenants never collide and rebalancing can re-route
every record from its stored form alone.  Reads are read-your-writes:
a ``get`` consults the owning shard's pending queue before the shard
itself, so an acknowledged-but-unflushed ``put`` is already visible.

Observability rides the existing ``repro.obs`` machinery: every shard
carries a :class:`~repro.obs.StoreObserver` (per-shard Wamp/fill time
series, cleaning decisions, seal/clean events), the service keeps its
own :class:`~repro.obs.MetricsRegistry` (ingest queue depth, batch-size
histogram, per-shard op counters, rebalance counts), and
:meth:`Service.export_rows` emits one schema block for the service
plus one per shard — a file ``repro obs report`` and ``repro obs
validate`` consume unchanged.

Three trace-plane extensions sit on top (all optional, all off by
default so the metrics export stays byte-deterministic):

* :meth:`attach_tracer` wires one :class:`~repro.obs.Tracer` through
  the queue, pool, and every shard observer, so a ``service.put`` and
  the flush/maintain/clean work it triggers form one causal span tree.
* Every flush's stall pages feed an :class:`~repro.obs.SLOTracker`
  (``service.slo``) — multi-window burn rates over the flush-stall
  stream, embedded in bench results for the ``kind: slo`` matrix gate.
* :meth:`telemetry_to` appends one ``telemetry`` row per tick (wall
  time, per-shard Wamp/fill/queue/stall, SLO state) — the file
  ``repro top`` tails.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

from repro.obs import (
    PAGES_EDGES,
    MetricsRegistry,
    MetricsWriter,
    SLOTracker,
    StoreObserver,
)
from repro.obs.clock import now_s
from repro.obs.export import SCHEMA_VERSION
from repro.service.ingest import OP_PUT, IngestQueue
from repro.service.pool import StorePool
from repro.service.router import ConsistentHashRouter
from repro.store import StoreConfig

Key = Union[str, bytes, int, tuple]


class Service:
    """Sharded key-value service over one :class:`StorePool`.

    Args:
        n_shards: Shard count.
        config: Per-shard store geometry.
        policy: Cleaning-policy name (per-shard instances).
        unit_bytes: KV record granularity.
        replicas: Router virtual nodes per shard.
        tenant_spread: Router per-tenant affinity window (1.0 = none).
        batch_size / flush_interval / max_depth: Ingest queue knobs.
        gc_budget / gc_max_share / free_target: Cleaning governor knobs.
        cleaner / pages_per_step: Cleaning mode — ``"batch"`` (whole
            cycles) or ``"incremental"`` (bounded preemptible steps of
            ``pages_per_step`` pages; see :class:`StorePool`).
        seed: Ring seed (the service itself draws no randomness).
        sample_interval: Per-shard time-series spacing in update ticks.
    """

    def __init__(
        self,
        n_shards: int,
        config: StoreConfig,
        policy: str = "mdc",
        unit_bytes: int = 64,
        replicas: int = 64,
        tenant_spread: float = 1.0,
        batch_size: int = 256,
        flush_interval: int = 4,
        max_depth: int = 4096,
        gc_budget: Optional[int] = None,
        gc_max_share: float = 0.5,
        free_target: Optional[int] = None,
        cleaner: str = "batch",
        pages_per_step: int = 32,
        seed: int = 0,
        sample_interval: Optional[int] = None,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.router = ConsistentHashRouter(
            n_shards, replicas=replicas, seed=seed, tenant_spread=tenant_spread
        )
        self.pool = StorePool(
            n_shards,
            config,
            policy=policy,
            unit_bytes=unit_bytes,
            gc_budget=gc_budget,
            gc_max_share=gc_max_share,
            free_target=free_target,
            metrics=self.metrics,
            cleaner=cleaner,
            pages_per_step=pages_per_step,
        )
        self.queue = IngestQueue(
            self.pool.shards,
            batch_size=batch_size,
            flush_interval=flush_interval,
            max_depth=max_depth,
            metrics=self.metrics,
        )
        self.queue.after_flush = self._after_flush
        #: Flush-stall SLO: a flush stalling behind more than one
        #: incremental step's worth of GC pages is a bad event.
        self.slo = SLOTracker()
        self.queue.on_stall = self.slo.record
        #: Trace plane — ``None`` until :meth:`attach_tracer`.
        self.tracer = None
        #: Telemetry sink — ``None`` until :meth:`telemetry_to`.
        self.telemetry: Optional[MetricsWriter] = None
        self.seed = seed
        self._sample_interval = sample_interval
        # The keyspace a service sees is bounded (tenants x keys), so
        # memoizing ring lookups turns the per-op blake2b hash into a
        # dict hit; scale_to() invalidates it when the ring changes.
        self._routes: Dict[tuple, int] = {}
        self._c_puts = self.metrics.counter("puts")
        self._c_deletes = self.metrics.counter("deletes")
        self._c_gets = self.metrics.counter("gets")
        self.observers: List[StoreObserver] = [
            StoreObserver(
                kv.store,
                sample_interval=sample_interval,
                capture_failpoints=False,
            ).attach()
            for kv in self.pool.shards
        ]

    # -- internals -------------------------------------------------------

    @staticmethod
    def _skey(tenant: Optional[Key], key: Key) -> tuple:
        """The stored (namespaced) form of a client key."""
        return (tenant, key)

    def shard_of(self, key: Key, tenant: Optional[Key] = None) -> int:
        """The shard index owning ``key`` under ``tenant``."""
        skey = (tenant, key)
        shard = self._routes.get(skey)
        if shard is None:
            # Only a memo miss does real ring work, so only a miss
            # opens a router span.
            tracer = self.tracer
            span = tracer.start("router.route") if tracer is not None else None
            shard = self.router.shard_for(key, tenant=tenant)
            self._routes[skey] = shard
            if span is not None:
                tracer.finish(span, shard=shard)
        return shard

    def _after_flush(self, shard: int) -> None:
        """Post-batch governance: one budgeted maintenance round."""
        self.pool.maintain()

    # -- client API ------------------------------------------------------

    def put(self, key: Key, value: bytes, tenant: Optional[Key] = None) -> int:
        """Acknowledge an upsert into the ingest queue; returns the
        owning shard index."""
        tracer = self.tracer
        span = tracer.start("service.put") if tracer is not None else None
        shard = self.shard_of(key, tenant)
        self._c_puts.inc()
        self.queue.put(shard, self._skey(tenant, key), value)
        if span is not None:
            tracer.finish(span, shard=shard)
        return shard

    def delete(self, key: Key, tenant: Optional[Key] = None) -> int:
        """Acknowledge a delete; returns the owning shard index."""
        tracer = self.tracer
        span = tracer.start("service.delete") if tracer is not None else None
        shard = self.shard_of(key, tenant)
        self._c_deletes.inc()
        self.queue.delete(shard, self._skey(tenant, key))
        if span is not None:
            tracer.finish(span, shard=shard)
        return shard

    def get(
        self,
        key: Key,
        tenant: Optional[Key] = None,
        default: Optional[bytes] = None,
    ) -> Optional[bytes]:
        """Read-your-writes fetch: pending queue first, then the shard."""
        shard = self.shard_of(key, tenant)
        self._c_gets.inc()
        skey = self._skey(tenant, key)
        pending = self.queue.pending_value(shard, skey)
        if pending is not None:
            return pending[2] if pending[0] == OP_PUT else default
        return self.pool[shard].get(skey, default)

    def __contains__(self, key: Key) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        live = sum(len(kv) for kv in self.pool.shards)
        # Pending ops shift the count only once applied; flush for an
        # exact figure.
        return live

    # -- service clock ---------------------------------------------------

    def tick(self) -> None:
        """One service-clock step: age the queue (flush-on-tick), run a
        maintenance round, and advance the per-shard samplers.

        The tick is the service's idle edge: with the incremental
        cleaner the maintenance round here runs in *idle* mode (every
        needy shard gets proactive steps up to the budget), whereas the
        rounds fired from inside a flush are loaded and defer all
        non-urgent work to this one."""
        tracer = self.tracer
        span = tracer.start("service.tick") if tracer is not None else None
        self.queue.tick()
        self.pool.maintain(idle=True)
        for observer in self.observers:
            observer.maybe_sample()
        if span is not None:
            tracer.finish(span)
        if self.telemetry is not None:
            self.telemetry.write_row(self.telemetry_row())

    def flush(self) -> int:
        """Drain the ingest queue; returns ops applied."""
        return self.queue.flush_all()

    # -- elasticity ------------------------------------------------------

    def scale_to(self, n_shards: int) -> int:
        """Grow the pool to ``n_shards``, migrating only the keys whose
        route changed; returns the number of keys moved.

        Consistent hashing guarantees moved keys always land on the
        *new* shards, so pre-existing shards only lose records.
        """
        if n_shards < self.pool.n_shards:
            raise ValueError(
                "cannot shrink a pool from %d to %d shards"
                % (self.pool.n_shards, n_shards)
            )
        if n_shards == self.pool.n_shards:
            return 0
        self.flush()
        old_n = self.pool.n_shards
        for _ in range(old_n, n_shards):
            shard = self.pool.add_shard()
            self.queue.add_shard(shard)
            observer = StoreObserver(
                shard.store,
                sample_interval=self._sample_interval,
                capture_failpoints=False,
            ).attach()
            observer.tracer = self.tracer
            self.observers.append(observer)
        self.router = self.router.grown(n_shards)
        self._routes.clear()
        moved = 0
        for src in range(old_n):
            kv = self.pool[src]
            moves: Dict[int, List[tuple]] = {}
            for skey in list(kv.keys()):
                tenant, key = skey
                dst = self.router.shard_for(key, tenant=tenant)
                if dst != src:
                    moves.setdefault(dst, []).append(skey)
            for dst in sorted(moves):
                batch = [(skey, kv.get(skey)) for skey in moves[dst]]
                self.pool[dst].put_many(batch)
                for skey in moves[dst]:
                    kv.delete(skey)
                moved += len(batch)
        self.metrics.counter("rebalances").inc()
        self.metrics.counter("keys_migrated").inc(moved)
        self.pool.maintain()
        return moved

    # -- observability ---------------------------------------------------

    def attach_tracer(self, tracer):
        """Wire one :class:`~repro.obs.Tracer` through the whole stack:
        service ops, queue flushes, pool maintenance, and the per-shard
        store hooks (via each observer's ``tracer`` slot).  Returns the
        tracer for chaining; pass ``None`` to detach."""
        self.tracer = tracer
        self.queue.tracer = tracer
        self.pool.tracer = tracer
        for observer in self.observers:
            observer.tracer = tracer
        return tracer

    def telemetry_to(
        self,
        sink: Union[str, MetricsWriter],
        meta: Optional[Dict] = None,
    ) -> MetricsWriter:
        """Start appending one ``telemetry`` row per tick to ``sink``.

        Writes the schema meta header immediately, so the file is valid
        (and ``repro top``-tailable) from the first tick.
        """
        writer = sink if isinstance(sink, MetricsWriter) else MetricsWriter(str(sink))
        run = dict(meta) if meta else {}
        run.setdefault("component", "telemetry")
        run.setdefault("policy", self.pool.policy_name)
        run.setdefault("shards", self.pool.n_shards)
        run.setdefault("seed", self.seed)
        writer.write_row({"type": "meta", "schema": SCHEMA_VERSION, "run": run})
        self.telemetry = writer
        return writer

    def telemetry_row(self) -> Dict:
        """One live-state row: wall time on the shared clock, service
        clock/queue/SLO state, and per-shard Wamp/fill/queue/stall."""
        flush_hist = self.metrics.histogram("flush_stall_pages", PAGES_EDGES)
        shards = []
        for i, kv in enumerate(self.pool.shards):
            store = kv.store
            observer = self.observers[i] if i < len(self.observers) else None
            stall_p99 = 0.0
            stalls = 0
            if observer is not None:
                stall_p99 = observer.metrics.histogram(
                    "write_stall_pages", PAGES_EDGES
                ).percentile(0.99)
                stalls = observer.metrics.counter("write_stalls").value
            shards.append(
                {
                    "shard": i,
                    "wamp": round(kv.write_amplification, 4),
                    "fill": round(store.fill_factor_now(), 4),
                    "free_segments": store.free_segment_count,
                    "queue_depth": len(self.queue._pending[i]),
                    "write_stalls": stalls,
                    "stall_p99_pages": round(stall_p99, 2),
                }
            )
        return {
            "type": "telemetry",
            "t_s": round(now_s(), 6),
            "clock": sum(kv.store.clock for kv in self.pool.shards),
            "tick": self.queue._tick,
            "queue_depth": self.queue.depth,
            "flush_stall_p99_pages": round(flush_hist.percentile(0.99), 2),
            "slo": self.slo.report(),
            "shards": shards,
        }

    def queue_depth_p95(self) -> int:
        """95th percentile of the queue depth across all ticks so far."""
        samples = sorted(self.queue.depth_samples)
        if not samples:
            return 0
        return samples[min(len(samples) - 1, int(0.95 * len(samples)))]

    def rows(self, meta: Optional[Dict] = None) -> Iterator[Dict]:
        """Schema-v1 rows: one service-level block (meta + metrics),
        then one block per shard from its :class:`StoreObserver`."""
        header = {"type": "meta", "schema": SCHEMA_VERSION}
        header["run"] = dict(meta) if meta else {}
        header["run"].setdefault("component", "service")
        header["run"].setdefault("policy", self.pool.policy_name)
        header["run"].setdefault("shards", self.pool.n_shards)
        header["run"].setdefault("seed", self.seed)
        yield header
        row = self.metrics.snapshot().to_dict()
        row["type"] = "metrics"
        row["clock"] = sum(kv.store.clock for kv in self.pool.shards)
        row["queue_depth_p95"] = self.queue_depth_p95()
        yield row
        for i, observer in enumerate(self.observers):
            observer.sample_now()
            shard_meta = dict(meta) if meta else {}
            shard_meta["component"] = "shard"
            shard_meta["shard"] = i
            shard_meta["shards"] = self.pool.n_shards
            shard_meta["seed"] = self.seed
            for row in observer.rows(shard_meta):
                yield row

    def export_rows(
        self,
        sink: Union[str, MetricsWriter],
        meta: Optional[Dict] = None,
    ) -> int:
        """Write :meth:`rows` to a JSONL path or shared writer; returns
        the row count."""
        writer = sink if isinstance(sink, MetricsWriter) else MetricsWriter(str(sink))
        return writer.write_rows(self.rows(meta))

    def close(self) -> None:
        """Flush pending writes and detach the shard observers."""
        self.flush()
        for observer in self.observers:
            observer.detach()

    def __repr__(self) -> str:
        return "<Service shards=%d queued=%d keys=%d>" % (
            self.pool.n_shards,
            self.queue.depth,
            len(self),
        )
