"""The service scaling benchmark behind ``repro bench service``.

Runs the same deterministic client load three ways — the serial
single-shard baseline (per-key scalar puts, no batching) and the full
batched service at each requested shard count — and reports, per
configuration:

* aggregate writes/sec (wall clock, reported here and in the history
  trajectory only — never in obs exports);
* per-shard Wamp and the Wamp *spread* (max - min), the fairness
  signal for the pool's budgeted cleaning;
* the ingest queue-depth p95, the batching/backpressure signal.

``BENCH_service.json`` is the committed snapshot of this report (see
EXPERIMENTS.md); CI's service smoke job appends each run's headline to
``benchmarks/history.jsonl`` next to the micro-benchmark trajectory.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence

from repro.bench.history import HISTORY_PATH, append_entry, git_sha as _git_sha
from repro.service.harness import (
    HarnessConfig,
    run_harness,
    run_serial_baseline,
)

#: Default committed report location.
BENCH_PATH = "BENCH_service.json"

#: Shard counts the committed baseline covers.
DEFAULT_SHARD_COUNTS = (1, 2, 4)


def run_service_bench(
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    quick: bool = False,
    seed: int = 0,
    ops: Optional[int] = None,
) -> Dict:
    """Run the serial baseline plus one harness run per shard count."""
    cfg = HarnessConfig.quick(seed=seed) if quick else HarnessConfig(seed=seed)
    if ops is not None:
        cfg = cfg.scaled(ops=ops)
    serial = run_serial_baseline(cfg.scaled(n_shards=1))
    shards: Dict[str, Dict] = {}
    for n in shard_counts:
        result = run_harness(cfg.scaled(n_shards=n))
        shards[str(n)] = result.to_dict()
    return {
        "benchmark": "service",
        "quick": quick,
        "seed": seed,
        "config": dataclasses.asdict(cfg),
        "serial": serial.to_dict(),
        "shards": shards,
    }


def render_service_bench(report: Dict) -> str:
    """Human-readable table of a service bench report."""
    lines = [
        "service scaling benchmark (ops=%d, dist=%s, seed=%d)"
        % (
            report["config"]["ops"],
            report["config"]["dist"],
            report["seed"],
        ),
        "  %-18s %12s %9s %10s %10s %10s"
        % ("configuration", "writes/sec", "speedup", "Wamp", "spread", "q p95"),
    ]
    serial = report["serial"]
    base = serial["writes_per_sec"]

    def row(label: str, r: Dict) -> str:
        return "  %-18s %12.0f %8.2fx %10.4f %10.4f %10d" % (
            label,
            r["writes_per_sec"],
            r["writes_per_sec"] / base if base else float("inf"),
            r["wamp_aggregate"],
            r["wamp_spread"],
            r["queue_depth_p95"],
        )

    lines.append(row("serial 1 shard", serial))
    for n in sorted(report["shards"], key=int):
        lines.append(row("service %s shard(s)" % n, report["shards"][n]))
    return "\n".join(lines)


def check_service_report(report: Dict) -> List[str]:
    """Acceptance checks: every batched service configuration must at
    least match the serial single-shard baseline's throughput."""
    problems = []
    base = report["serial"]["writes_per_sec"]
    for n, r in report["shards"].items():
        if r["writes_per_sec"] < base:
            problems.append(
                "service with %s shard(s) ran at %.0f writes/sec, below the "
                "serial baseline's %.0f" % (n, r["writes_per_sec"], base)
            )
    return problems


def write_service_report(report: Dict, path: str = BENCH_PATH) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_service_report(path: str = BENCH_PATH) -> Dict:
    with open(path) as fh:
        return json.load(fh)


def service_history_entry(report: Dict, sha: Optional[str] = None) -> Dict:
    """One ``benchmarks/history.jsonl`` line: the commit plus each
    configuration's aggregate writes/sec and fairness numbers."""
    entry: Dict = {
        "sha": sha if sha is not None else _git_sha(),
        "benchmark": "service",
        "seed": report["seed"],
        "quick": report["quick"],
        "ops": report["config"]["ops"],
        "serial_writes_per_sec": round(report["serial"]["writes_per_sec"], 1),
        "shards": {},
    }
    for n, r in sorted(report["shards"].items(), key=lambda kv: int(kv[0])):
        entry["shards"][n] = {
            "writes_per_sec": round(r["writes_per_sec"], 1),
            "wamp_spread": round(r["wamp_spread"], 6),
            "queue_depth_p95": r["queue_depth_p95"],
        }
    return entry


#: Legacy alias; the shared appender lives in :mod:`repro.bench.history`.
_append_entry = append_entry


def append_service_history(
    report: Dict, path: str = HISTORY_PATH, sha: Optional[str] = None
) -> Dict:
    """Append :func:`service_history_entry` to the benchmark
    trajectory; returns the appended entry."""
    return _append_entry(service_history_entry(report, sha=sha), path)


def serve_history_entry(result, seed: int, sha: Optional[str] = None) -> Dict:
    """One history line for a single ``repro serve`` run (what the CI
    service smoke job appends): aggregate writes/sec plus the fairness
    and queueing headline numbers."""
    return {
        "sha": sha if sha is not None else _git_sha(),
        "benchmark": "service-serve",
        "seed": seed,
        "shards": result.shards,
        "ops": result.ops,
        "writes_per_sec": round(result.writes_per_sec, 1),
        "wamp_aggregate": round(result.wamp_aggregate, 6),
        "wamp_spread": round(result.wamp_spread, 6),
        "queue_depth_p95": result.queue_depth_p95,
    }


def append_serve_history(
    result, seed: int, path: str = HISTORY_PATH, sha: Optional[str] = None
) -> Dict:
    """Append :func:`serve_history_entry` to the benchmark trajectory;
    returns the appended entry."""
    return _append_entry(serve_history_entry(result, seed, sha=sha), path)
