"""A pool of KV shards with globally-budgeted cleaning.

Each shard is a complete :class:`~repro.kvstore.LogStructuredKVStore`
— its own device, page table, and cleaning-policy instance (policies
bind to exactly one store, so the pool always constructs per-shard
policies from the policy *name*).

Cleaning governance
-------------------

Left alone, every shard cleans reactively: the store runs cleaning
cycles inline the moment its free pool dips below ``clean_trigger``,
stalling whatever write triggered it.  The pool adds a *proactive*
layer: :meth:`StorePool.maintain` runs between ingest batches, tops up
any shard whose free pool fell below ``free_target`` — and meters the
work with a **global slack budget**: at most ``gc_budget`` page
relocations per maintenance round across the whole pool, of which one
shard may consume at most ``gc_max_share``.  A hot shard (skewed
tenant, unlucky routing) therefore cannot monopolize maintenance
bandwidth and starve the other shards into reactive-cleaning stalls —
it spends its share, yields, and the remaining budget goes to the next
neediest shard.  Shards are visited most-starved-first (largest free
deficit, ties toward the lower shard id) so the ordering is
deterministic and need-driven.

Reactive cleaning stays enabled underneath as the correctness
backstop: the budget shapes *when* cleaning happens, never whether a
write can complete.

Incremental mode
----------------

With ``cleaner="incremental"`` the governor dispatches bounded
:class:`~repro.store.IncrementalCleaner` *steps* instead of whole
cycles: a needy shard gets at most ``pages_per_step`` relocations per
round (still under the global budget and per-shard share cap), so the
stall any single maintenance round injects into the ingest path is
bounded by pages, not by victim liveness.  Rounds run in two modes:

* **loaded** (``maintain()``, fired after every flush): only shards
  *behind* — free pool below the reactive trigger, meaning the very
  next allocating write would clean inline — get a step; merely-needy
  shards are deferred, and counted in ``gc_deferred_shards``.
* **idle** (``maintain(idle=True)``, fired from the service tick):
  every needy shard gets steps, repeatedly, until the round budget is
  spent or nobody is below ``free_target`` — the idle-triggered
  cleaning that keeps the proactive headroom topped up between bursts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.kvstore import LogStructuredKVStore
from repro.obs import MetricsRegistry
from repro.policies.base import CleaningPolicy
from repro.store import IncrementalCleaner, StoreConfig

#: Accepted ``cleaner`` modes.
CLEANER_MODES = ("batch", "incremental")


class StorePool:
    """``n_shards`` independent KV shards plus the cleaning governor.

    Args:
        n_shards: Number of shards (>= 1).
        config: Per-shard device geometry (every shard gets the same).
        policy: Cleaning-policy *name* (each shard binds its own
            instance; a shared policy object is rejected).
        unit_bytes: KV record granularity, passed to every shard.
        gc_budget: Page relocations allowed per maintenance round,
            pool-wide (default: two segments' worth).
        gc_max_share: Largest fraction of a round's budget one shard
            may consume.
        free_target: Proactive free-segment floor per shard (default:
            ``clean_trigger + 1`` — one segment of headroom before the
            reactive trigger).
        metrics: Service metrics registry for governor counters.
        cleaner: ``"batch"`` (whole cycles per maintenance visit, the
            historical behavior) or ``"incremental"`` (bounded
            preemptible steps; see module docstring).
        pages_per_step: Relocation budget per incremental step.
    """

    def __init__(
        self,
        n_shards: int,
        config: StoreConfig,
        policy: Union[str, CleaningPolicy] = "mdc",
        unit_bytes: int = 64,
        gc_budget: Optional[int] = None,
        gc_max_share: float = 0.5,
        free_target: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        cleaner: str = "batch",
        pages_per_step: int = 32,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1, got %d" % n_shards)
        if not isinstance(policy, str):
            raise TypeError(
                "StorePool needs a policy name; policy instances bind to "
                "exactly one store and cannot be shared across shards"
            )
        if not 0.0 < gc_max_share <= 1.0:
            raise ValueError("gc_max_share must be in (0, 1]")
        if cleaner not in CLEANER_MODES:
            raise ValueError(
                "cleaner must be one of %r, got %r" % (CLEANER_MODES, cleaner)
            )
        self.config = config
        self.policy_name = policy
        self.unit_bytes = unit_bytes
        self.shards: List[LogStructuredKVStore] = [
            LogStructuredKVStore(config, policy=policy, unit_bytes=unit_bytes)
            for _ in range(n_shards)
        ]
        self.gc_budget = (
            gc_budget if gc_budget is not None else 2 * config.segment_units
        )
        if self.gc_budget < 1:
            raise ValueError("gc_budget must be >= 1")
        self.gc_max_share = gc_max_share
        self.free_target = (
            free_target if free_target is not None else config.clean_trigger + 1
        )
        self.metrics = metrics
        self.cleaner_mode = cleaner
        self.pages_per_step = int(pages_per_step)
        self.cleaners: Optional[List[IncrementalCleaner]] = None
        if cleaner == "incremental":
            self.cleaners = [
                self._make_cleaner(kv) for kv in self.shards
            ]
        #: Optional :class:`~repro.obs.trace.Tracer`; when set, each
        #: maintenance round opens a ``pool.maintain`` span (shard-level
        #: clean_begin/clean_step spans nest under it via the store
        #: observers' tracer).
        self.tracer = None

    def _make_cleaner(self, kv: LogStructuredKVStore) -> IncrementalCleaner:
        return IncrementalCleaner(
            kv.store,
            pages_per_step=self.pages_per_step,
            free_target=self.free_target,
        )

    # -- shape -----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def __len__(self) -> int:
        return len(self.shards)

    def __getitem__(self, shard: int) -> LogStructuredKVStore:
        return self.shards[shard]

    def add_shard(self) -> LogStructuredKVStore:
        """Append one fresh, empty shard (service-level rebalancing
        moves the keys)."""
        shard = LogStructuredKVStore(
            self.config, policy=self.policy_name, unit_bytes=self.unit_bytes
        )
        self.shards.append(shard)
        if self.cleaners is not None:
            self.cleaners.append(self._make_cleaner(shard))
        return shard

    # -- cleaning governance --------------------------------------------

    def maintain(self, idle: bool = False) -> int:
        """One budgeted maintenance round; returns pages relocated.

        In batch mode, tops up shards below ``free_target``
        most-starved-first with whole cleaning cycles until the round
        budget (or every shard's per-round share) is spent; ``idle`` is
        accepted for interface symmetry but changes nothing.  In
        incremental mode, dispatches bounded cleaner steps — see the
        module docstring for the loaded/idle split.
        """
        tracer = self.tracer
        span = (
            tracer.start("pool.maintain", idle=idle)
            if tracer is not None
            else None
        )
        moved = 0
        try:
            if self.cleaners is not None:
                moved = self._maintain_incremental(idle)
            else:
                moved = self._maintain_batch()
        finally:
            if span is not None:
                tracer.finish(span, pages=moved)
        return moved

    def _maintain_batch(self) -> int:
        """Whole-cycle governance round (``cleaner="batch"``)."""
        budget = self.gc_budget
        share_cap = max(1, int(self.gc_max_share * budget))
        needy = [
            (self.free_target - kv.store.free_segment_count, i)
            for i, kv in enumerate(self.shards)
            if kv.store.free_segment_count < self.free_target
        ]
        if not needy:
            return 0
        needy.sort(key=lambda pair: (-pair[0], pair[1]))
        spent_total = 0
        capped = False
        for _deficit, i in needy:
            if spent_total >= budget:
                capped = True
                break
            store = self.shards[i].store
            spent_shard = 0
            while (
                store.free_segment_count < self.free_target
                and spent_total < budget
                and spent_shard < share_cap
            ):
                if store.sealed_segments().size == 0:
                    break  # nothing cleanable yet (young shard)
                before = store.stats.gc_writes
                store.clean()
                moved = store.stats.gc_writes - before
                spent_shard += moved
                spent_total += moved
                if self.metrics is not None:
                    self.metrics.counter("gc_governed_cycles").inc()
            if spent_shard >= share_cap and (
                store.free_segment_count < self.free_target
            ):
                capped = True
        if self.metrics is not None and spent_total:
            self.metrics.counter("gc_governed_pages").inc(spent_total)
            if capped:
                self.metrics.counter("gc_budget_capped_rounds").inc()
        return spent_total

    def _maintain_incremental(self, idle: bool) -> int:
        """Step-granular governance round (``cleaner="incremental"``)."""
        cleaners = self.cleaners
        assert cleaners is not None
        budget = self.gc_budget
        share_cap = max(1, int(self.gc_max_share * budget))
        spent_total = 0
        deferred = 0
        capped = False
        # Repeated passes only when idle; a loaded round injects at most
        # one step per urgent shard into the foreground path.
        while spent_total < budget:
            needy = [
                (self.free_target - kv.store.free_segment_count, i)
                for i, kv in enumerate(self.shards)
                if cleaners[i].needs_cleaning()
            ]
            if not needy:
                break
            needy.sort(key=lambda pair: (-pair[0], pair[1]))
            progressed = False
            for _deficit, i in needy:
                if spent_total >= budget:
                    capped = True
                    break
                cleaner = cleaners[i]
                if not idle and not cleaner.behind():
                    # Loaded round: this shard still has headroom above
                    # the reactive trigger — defer its proactive work
                    # to the next idle round.
                    deferred += 1
                    continue
                step_budget = min(
                    self.pages_per_step, share_cap, budget - spent_total
                )
                moved = cleaner.step(step_budget)
                if moved:
                    spent_total += moved
                    progressed = True
                    if self.metrics is not None:
                        self.metrics.counter("gc_governed_steps").inc()
            if not idle or not progressed:
                break
        if self.metrics is not None:
            if spent_total:
                self.metrics.counter("gc_governed_pages").inc(spent_total)
            if deferred:
                self.metrics.counter("gc_deferred_shards").inc(deferred)
            if capped:
                self.metrics.counter("gc_budget_capped_rounds").inc()
        return spent_total

    # -- aggregate introspection ----------------------------------------

    def free_segments(self) -> List[int]:
        """Per-shard free-pool depth."""
        return [kv.store.free_segment_count for kv in self.shards]

    def wamp_per_shard(self) -> List[float]:
        """Per-shard cumulative write amplification."""
        return [kv.write_amplification for kv in self.shards]

    def stats_summary(self) -> Dict[str, float]:
        """Pool-wide counters: user writes, GC writes, keys, and the
        per-shard Wamp spread (max - min over shards that saw writes)."""
        user = sum(kv.store.stats.user_writes for kv in self.shards)
        gc = sum(kv.store.stats.gc_writes for kv in self.shards)
        wamps = [
            kv.write_amplification
            for kv in self.shards
            if kv.store.stats.user_writes
        ]
        summary = {
            "shards": float(len(self.shards)),
            "keys": float(sum(len(kv) for kv in self.shards)),
            "user_writes": float(user),
            "gc_writes": float(gc),
            "wamp_aggregate": gc / user if user else 0.0,
            "wamp_spread": (max(wamps) - min(wamps)) if wamps else 0.0,
        }
        if self.cleaners is not None:
            summary["cleaner_pending"] = float(
                sum(c.pending for c in self.cleaners)
            )
        return summary

    def check_consistency(self) -> None:
        """Every shard's index/store agreement (test aid)."""
        for kv in self.shards:
            kv.check_consistency()

    def __repr__(self) -> str:
        return "<StorePool shards=%d policy=%s free=%s>" % (
            len(self.shards),
            self.policy_name,
            self.free_segments(),
        )
