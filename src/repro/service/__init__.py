"""Service-grade front-end over the log-structured store.

The package turns the single-store simulator into the system the
paper's deployment context implies (Section 1's "cloud data
management"-scale stores): ``n`` independent store shards behind a
consistent-hash router, client writes coalesced by a batched ingest
queue, cleaning metered across shards by a global slack budget, and
everything observable through the ``repro.obs`` JSONL schema.

Entry points:

* :class:`Service` — the in-process front-end (put/get/delete,
  ``tick``, ``scale_to``, obs export).
* :mod:`repro.service.harness` — the deterministic concurrent client
  harness behind ``repro serve`` / ``repro loadgen``.
* :mod:`repro.service.bench` — the shard-count scaling benchmark
  behind ``repro bench service`` (``BENCH_service.json``).
"""

from repro.service.harness import (
    HARNESS_DISTS,
    HarnessConfig,
    HarnessResult,
    build_service,
    ops_stream,
    read_ops_jsonl,
    replay_ops,
    run_harness,
    run_serial_baseline,
    shard_config,
    write_ops_jsonl,
)
from repro.service.ingest import IngestQueue
from repro.service.pool import StorePool
from repro.service.router import ConsistentHashRouter, RouterError, encode_key
from repro.service.service import Service

__all__ = [
    "HARNESS_DISTS",
    "ConsistentHashRouter",
    "HarnessConfig",
    "HarnessResult",
    "IngestQueue",
    "RouterError",
    "Service",
    "StorePool",
    "build_service",
    "encode_key",
    "ops_stream",
    "read_ops_jsonl",
    "replay_ops",
    "run_harness",
    "run_serial_baseline",
    "shard_config",
    "write_ops_jsonl",
]
