"""Batched ingest: coalescing client writes into per-shard batches.

The service's write path is asynchronous in the batching sense: a
client ``put``/``delete`` is acknowledged into a bounded in-memory
queue and applied to the owning shard later, as part of a coalesced
multi-key batch.  Three mechanisms bound the staleness and the memory:

* **flush-on-size** — a shard whose pending run reaches ``batch_size``
  ops is flushed immediately;
* **flush-on-tick** — the service clock (:meth:`IngestQueue.tick`)
  flushes any shard whose oldest pending op has waited
  ``flush_interval`` ticks;
* **backpressure** — when the queue's *total* depth reaches
  ``max_depth``, the deepest shard is flushed synchronously before the
  enqueue completes (counted, so saturated runs are visible in the
  metrics rather than silently slow).

A flushed batch is **coalesced** before it touches the shard: within
one batch the last op per key wins, so ten queued updates of a hot key
cost the store one user write, not ten.  The surviving puts go down in
a single vectorized
:meth:`~repro.kvstore.LogStructuredKVStore.put_many` call (first-
arrival order, which is deterministic), the surviving deletes as
TRIMs; after coalescing the two groups touch disjoint keys, so the
final shard state is exactly what applying the client ops one by one
would leave.  The ``ops_coalesced`` counter records how many queued
ops the dedup absorbed — on skewed tenant keyspaces this is the
service's second amplification lever, upstream of the cleaner.

Everything is synchronous and deterministic: "async" is a property of
the *ordering contract* (acknowledge now, apply on flush), not of
threads, which is what makes harness runs byte-identical under a fixed
seed.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.obs import PAGES_EDGES, MetricsRegistry

#: Batch-size histogram buckets (ops per flushed batch).
BATCH_SIZE_EDGES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Op tags used in pending runs.
OP_PUT = 0
OP_DELETE = 1

#: A pending op: (OP_PUT, key, value) or (OP_DELETE, key, None).
Op = Tuple[int, object, Optional[bytes]]


class IngestQueue:
    """Bounded, coalescing write queue over a pool of KV shards.

    Args:
        shards: The pool's shard list (``LogStructuredKVStore``-shaped:
            ``put_many``, ``delete``).
        batch_size: Per-shard flush-on-size threshold, in ops.
        flush_interval: Ticks a pending op may wait before flush-on-tick.
        max_depth: Total queued ops across all shards before
            backpressure flushes the deepest shard.
        metrics: Service :class:`~repro.obs.MetricsRegistry` for queue
            instrumentation (optional).
    """

    def __init__(
        self,
        shards: List,
        batch_size: int = 256,
        flush_interval: int = 4,
        max_depth: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if flush_interval < 1:
            raise ValueError("flush_interval must be >= 1")
        if max_depth < batch_size:
            raise ValueError("max_depth must be >= batch_size")
        self.shards = shards
        self.batch_size = batch_size
        self.flush_interval = flush_interval
        self.max_depth = max_depth
        self.metrics = metrics
        self.depth = 0
        #: Queue depth observed at every tick (p95 source for benches).
        self.depth_samples: List[int] = []
        self._pending: List[List[Op]] = [[] for _ in shards]
        #: Tick at which each shard's oldest pending op was enqueued.
        self._oldest_tick: List[Optional[int]] = [None for _ in shards]
        self._tick = 0
        #: Optional callback fired after any shard flush (the service
        #: uses it to run cleaning governance between batches).
        self.after_flush: Optional[Callable[[int], None]] = None
        #: Optional callback fed each flush's stall pages (the service
        #: routes it into its :class:`~repro.obs.slo.SLOTracker`).
        self.on_stall: Optional[Callable[[float], None]] = None
        #: Optional :class:`~repro.obs.trace.Tracer`; when set, each
        #: flush opens a ``queue.flush`` span with ``shard.put_many``
        #: and downstream clean/maintain work as children.
        self.tracer = None

    def add_shard(self, shard) -> None:
        """Track one more shard (pool growth)."""
        self.shards.append(shard)
        self._pending.append([])
        self._oldest_tick.append(None)

    # -- enqueue ---------------------------------------------------------

    def put(self, shard: int, key, value: bytes) -> None:
        """Queue an upsert for ``shard``."""
        self._push(shard, (OP_PUT, key, value))

    def delete(self, shard: int, key) -> None:
        """Queue a delete for ``shard``."""
        self._push(shard, (OP_DELETE, key, None))

    def _push(self, shard: int, op: Op) -> None:
        pending = self._pending[shard]
        if not pending:
            self._oldest_tick[shard] = self._tick
        pending.append(op)
        self.depth += 1
        if len(pending) >= self.batch_size:
            self.flush_shard(shard)
        elif self.depth >= self.max_depth:
            deepest = max(
                range(len(self._pending)), key=lambda s: len(self._pending[s])
            )
            if self.metrics is not None:
                self.metrics.counter("backpressure_flushes").inc()
            self.flush_shard(deepest)

    # -- flushing --------------------------------------------------------

    def tick(self) -> int:
        """Advance the queue clock; flush shards whose oldest op aged
        past ``flush_interval``.  Returns the number of shards flushed."""
        self._tick += 1
        flushed = 0
        for shard in range(len(self._pending)):
            oldest = self._oldest_tick[shard]
            if (
                oldest is not None
                and self._tick - oldest >= self.flush_interval
            ):
                self.flush_shard(shard)
                flushed += 1
        self.depth_samples.append(self.depth)
        if self.metrics is not None:
            self.metrics.gauge("queue_depth").set(self.depth)
        return flushed

    def flush_shard(self, shard: int) -> int:
        """Apply ``shard``'s pending ops as one coalesced batch;
        returns the number of queued ops consumed."""
        ops = self._pending[shard]
        if not ops:
            return 0
        tracer = self.tracer
        span = None
        if tracer is not None:
            oldest = self._oldest_tick[shard]
            span = tracer.start(
                "queue.flush",
                shard=shard,
                ops=len(ops),
                queue_wait_ticks=0 if oldest is None else self._tick - oldest,
            )
        self._pending[shard] = []
        self._oldest_tick[shard] = None
        n = len(ops)
        self.depth -= n
        kv = self.shards[shard]
        # Foreground stall accounting: every GC page relocated anywhere
        # in the pool while this flush runs — inline reactive cleaning
        # under the batch *and* governance dispatched by after_flush —
        # is work the client-facing flush waited behind.  Stall-free
        # flushes observe 0 so the histogram's percentiles read over
        # the full flush population.
        gc_before = (
            sum(s.store.stats.gc_writes for s in self.shards)
            if self.metrics is not None
            else 0
        )
        # Last write wins per key; dict insertion keeps first-arrival
        # order for the surviving ops, so replay order is deterministic.
        final: dict = {}
        for op in ops:
            final[op[1]] = op
        puts = [
            (key, op[2]) for key, op in final.items() if op[0] == OP_PUT
        ]
        if puts:
            pspan = (
                tracer.start("shard.put_many", shard=shard, puts=len(puts))
                if tracer is not None
                else None
            )
            try:
                kv.put_many(puts)
            finally:
                if pspan is not None:
                    tracer.finish(pspan)
        for key, op in final.items():
            if op[0] == OP_DELETE:
                kv.delete(key)
        if self.metrics is not None:
            self.metrics.counter("batches_flushed").inc()
            self.metrics.counter("ops_flushed").inc(n)
            self.metrics.counter("ops_coalesced").inc(n - len(final))
            self.metrics.counter("shard%d_ops" % shard).inc(n)
            self.metrics.histogram("batch_size", BATCH_SIZE_EDGES).observe(n)
        if self.after_flush is not None:
            self.after_flush(shard)
        stall = 0
        if self.metrics is not None:
            stall = (
                sum(s.store.stats.gc_writes for s in self.shards) - gc_before
            )
            self.metrics.histogram(
                "flush_stall_pages", PAGES_EDGES
            ).observe(stall)
            if self.on_stall is not None:
                self.on_stall(float(stall))
        if span is not None:
            tracer.finish(
                span, stall_pages=float(stall), coalesced=n - len(final)
            )
        return n

    def flush_all(self) -> int:
        """Drain every shard; returns the total ops applied."""
        total = 0
        for shard in range(len(self._pending)):
            total += self.flush_shard(shard)
        return total

    def pending_value(self, shard: int, key) -> Optional[Op]:
        """The most recent queued op for ``key`` on ``shard`` (read-
        your-writes support), or None."""
        for op in reversed(self._pending[shard]):
            if op[1] == key:
                return op
        return None

    def __len__(self) -> int:
        return self.depth
