"""The tail-latency benchmark behind ``repro bench latency``.

Runs the same deterministic client load twice — batch cleaning (whole
victim cycles per maintenance visit) and incremental cleaning (bounded
preemptible steps) — at the *same* global GC budget, and contrasts what
foreground writes waited behind:

* ``flush_stall_pages`` — the deterministic stall signal: GC pages
  relocated anywhere in the pool while one client-facing flush ran
  (inline reactive cleaning plus loaded-round governance).  Stall-free
  flushes observe 0, so its percentiles read over the whole flush
  population.  This histogram's p99 is the gate: the committed report
  must show incremental p99 ≤ ``GATE_RATIO`` × batch p99.
* per-op wall-clock latency (p50/p99/p999, microseconds) — reported for
  intuition, never gated (wall clock is machine-dependent).
* aggregate Wamp for both modes — the trade-off axis: the incremental
  cleaner must win its stall reduction without buying it with extra
  write amplification beyond ``WAMP_SLACK``.

The run shape leans on the stall contrast deliberately: high target
fill and a chunky ``clean_batch`` make each batch-mode cycle relocate a
lot of live data at once, which is exactly the foreground stall the
incremental cleaner exists to bound.

``BENCH_latency.json`` is the committed snapshot (see EXPERIMENTS.md);
CI's latency smoke job re-runs the quick shape and gates the p99 stall
ratio against it.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional

import numpy as np

from repro.bench.history import HISTORY_PATH, append_entry, git_sha as _git_sha
from repro.obs import PAGES_EDGES
from repro.obs.clock import now_s
from repro.service.harness import HarnessConfig, build_service, ops_stream

#: Default committed report location.
BENCH_PATH = "BENCH_latency.json"

#: The acceptance gate: incremental p99 flush stall must be at or below
#: this fraction of the batch-mode p99.
GATE_RATIO = 0.5

#: How much extra aggregate Wamp the incremental mode may cost at the
#: same GC budget before the gate fails the trade.
WAMP_SLACK = 0.25

#: The two contrasted modes, in run order.
MODES = ("batch", "incremental")


def latency_config(quick: bool = False, seed: int = 0) -> HarnessConfig:
    """The benchmark's base run shape (mode is overlaid per run).

    High fill and a chunky batch ``clean_batch`` maximize the stall a
    whole-cycle clean injects; small frequent flushes give the stall
    histogram a dense population of foreground waits to rank.
    """
    base = HarnessConfig.quick(seed=seed) if quick else HarnessConfig(seed=seed)
    return base.scaled(
        target_fill=0.70,
        clean_trigger=2,
        clean_batch=8,
        batch_size=64,
        flush_interval=2,
        tick_every=128,
        # Both modes get the same proactive floor and budget (the
        # "equal Wamp budget" axis): enough headroom that idle rounds
        # can absorb a whole flush's segment consumption.  What differs
        # is *where* the work runs — batch governance tops up inside
        # the flush path, incremental defers to the idle tick.
        free_target=10,
        gc_budget=128,
        pages_per_step=16,
    )


def _drive(cfg: HarnessConfig) -> Dict:
    """One measured run: returns stall histograms + wall-clock
    percentiles + the pool's closing counters for ``cfg``."""
    service = build_service(cfg)
    latencies: List[float] = []
    applied = 0
    # Per-op and elapsed timings share the process clock span
    # timestamps use (repro.obs.clock), so a traced run's span file
    # lines up with these numbers directly.
    t0 = now_s()
    for op, tenant, key, size in ops_stream(cfg):
        t1 = now_s()
        if op == "put":
            service.put(key, bytes(size), tenant=tenant)
        else:
            service.delete(key, tenant=tenant)
        latencies.append(now_s() - t1)
        applied += 1
        if applied % cfg.tick_every == 0:
            service.tick()
    service.flush()
    service.tick()
    elapsed = now_s() - t0

    metrics = service.metrics
    stall_hist = metrics.histogram("flush_stall_pages", PAGES_EDGES)
    # Store-level reactive stalls, pooled across shards.
    reactive_stalls = 0
    reactive_pages = 0
    for observer in service.observers:
        counters = observer.metrics.snapshot().counters
        reactive_stalls += counters.get("write_stalls", 0)
        if "write_stall_pages" in observer.metrics.names():
            hist = observer.metrics.histogram("write_stall_pages")
            reactive_pages += int(hist.total)
    summary = service.pool.stats_summary()
    counters = metrics.snapshot().counters
    lat_us = np.asarray(latencies) * 1e6
    result = {
        "cleaner": cfg.cleaner,
        "ops": applied,
        "elapsed_s": round(elapsed, 4),
        "writes_per_sec": round(applied / elapsed, 1) if elapsed > 0 else 0.0,
        "wamp_aggregate": summary["wamp_aggregate"],
        "flush_count": stall_hist.count,
        "flush_stall_mean_pages": round(stall_hist.mean, 4),
        "flush_stall_p99_pages": round(stall_hist.percentile(0.99), 4),
        "flush_stall_p999_pages": round(stall_hist.percentile(0.999), 4),
        "flush_stall_max_pages": stall_hist.max_observed,
        "reactive_write_stalls": reactive_stalls,
        "reactive_stall_pages": reactive_pages,
        "gc_governed_pages": counters.get("gc_governed_pages", 0),
        "gc_deferred_shards": counters.get("gc_deferred_shards", 0),
        "gc_governed_steps": counters.get("gc_governed_steps", 0),
        "op_latency_us": {
            "p50": round(float(np.percentile(lat_us, 50)), 2),
            "p99": round(float(np.percentile(lat_us, 99)), 2),
            "p999": round(float(np.percentile(lat_us, 99.9)), 2),
            "max": round(float(lat_us.max()), 2),
        },
        # Burn-rate view over the same flush-stall stream; the
        # ``kind: slo`` matrix gate reads modes.<mode>.slo from here.
        "slo": service.slo.report(),
    }
    service.close()
    return result


def run_latency_bench(
    quick: bool = False, seed: int = 0, ops: Optional[int] = None
) -> Dict:
    """Run both cleaning modes on the same seeded load; returns the
    contrast report."""
    cfg = latency_config(quick=quick, seed=seed)
    if ops is not None:
        cfg = cfg.scaled(ops=ops)
    modes = {
        mode: _drive(cfg.scaled(cleaner=mode)) for mode in MODES
    }
    batch_p99 = modes["batch"]["flush_stall_p99_pages"]
    incr_p99 = modes["incremental"]["flush_stall_p99_pages"]
    return {
        "benchmark": "latency",
        "quick": quick,
        "seed": seed,
        "gate_ratio": GATE_RATIO,
        "wamp_slack": WAMP_SLACK,
        "config": dataclasses.asdict(cfg),
        "modes": modes,
        "stall_p99_ratio": (
            round(incr_p99 / batch_p99, 4) if batch_p99 > 0 else 0.0
        ),
    }


def render_latency_report(report: Dict) -> str:
    """Human-readable contrast table."""
    cfg = report["config"]
    lines = [
        "tail-latency benchmark (ops=%d, dist=%s, fill=%.2f, seed=%d)"
        % (cfg["ops"], cfg["dist"], cfg["target_fill"], report["seed"]),
        "  %-12s %10s %10s %10s %9s %9s %10s %10s"
        % ("cleaner", "stall p99", "p999", "max", "stalls", "Wamp",
           "lat p99us", "lat p999us"),
    ]
    for mode in MODES:
        r = report["modes"][mode]
        lines.append(
            "  %-12s %10.1f %10.1f %10.0f %9d %9.4f %10.1f %10.1f"
            % (
                mode,
                r["flush_stall_p99_pages"],
                r["flush_stall_p999_pages"],
                r["flush_stall_max_pages"],
                r["reactive_write_stalls"],
                r["wamp_aggregate"],
                r["op_latency_us"]["p99"],
                r["op_latency_us"]["p999"],
            )
        )
    lines.append(
        "  p99 stall ratio (incremental/batch) = %.3f  (gate <= %.2f)"
        % (report["stall_p99_ratio"], report["gate_ratio"])
    )
    return "\n".join(lines)


def check_latency_report(report: Dict) -> List[str]:
    """Acceptance checks on one report: the p99 stall gate and the
    equal-budget Wamp trade."""
    problems = []
    batch = report["modes"]["batch"]
    incr = report["modes"]["incremental"]
    b_p99 = batch["flush_stall_p99_pages"]
    i_p99 = incr["flush_stall_p99_pages"]
    gate = report.get("gate_ratio", GATE_RATIO)
    if b_p99 <= 0:
        problems.append(
            "batch run shows no p99 flush stall (%.3f pages) — the "
            "benchmark shape is not exercising cleaning" % b_p99
        )
    elif i_p99 > gate * b_p99:
        problems.append(
            "incremental p99 flush stall %.1f pages exceeds %.2fx the "
            "batch p99 of %.1f" % (i_p99, gate, b_p99)
        )
    slack = report.get("wamp_slack", WAMP_SLACK)
    b_wamp = batch["wamp_aggregate"]
    i_wamp = incr["wamp_aggregate"]
    if b_wamp > 0 and i_wamp > b_wamp * (1.0 + slack):
        problems.append(
            "incremental Wamp %.4f exceeds batch %.4f by more than %.0f%% "
            "— the stall win is being bought with extra GC writes"
            % (i_wamp, b_wamp, 100 * slack)
        )
    return problems


def check_latency_regression(
    report: Dict, baseline: Dict, margin: float = 0.25
) -> List[str]:
    """CI smoke gate: the current run's p99 stall ratio must not regress
    past the committed baseline's ratio by more than ``margin``
    (absolute), and the hard ``gate_ratio`` ceiling still applies."""
    problems = check_latency_report(report)
    base_ratio = baseline.get("stall_p99_ratio")
    ratio = report.get("stall_p99_ratio")
    if base_ratio is not None and ratio is not None:
        if ratio > base_ratio + margin:
            problems.append(
                "p99 stall ratio %.3f regressed past the committed "
                "baseline %.3f by more than %.2f" % (ratio, base_ratio, margin)
            )
    return problems


def write_latency_report(report: Dict, path: str = BENCH_PATH) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_latency_report(path: str = BENCH_PATH) -> Dict:
    with open(path) as fh:
        return json.load(fh)


def latency_history_entry(report: Dict, sha: Optional[str] = None) -> Dict:
    """One ``benchmarks/history.jsonl`` line: the stall contrast."""
    entry: Dict = {
        "sha": sha if sha is not None else _git_sha(),
        "benchmark": "latency",
        "seed": report["seed"],
        "quick": report["quick"],
        "ops": report["config"]["ops"],
        "stall_p99_ratio": report["stall_p99_ratio"],
        "modes": {},
    }
    for mode in MODES:
        r = report["modes"][mode]
        entry["modes"][mode] = {
            "flush_stall_p99_pages": r["flush_stall_p99_pages"],
            "flush_stall_p999_pages": r["flush_stall_p999_pages"],
            "wamp_aggregate": round(r["wamp_aggregate"], 6),
            "reactive_write_stalls": r["reactive_write_stalls"],
        }
    return entry


def append_latency_history(
    report: Dict, path: str = HISTORY_PATH, sha: Optional[str] = None
) -> Dict:
    """Append :func:`latency_history_entry` to the benchmark
    trajectory; returns the appended entry."""
    return append_entry(latency_history_entry(report, sha=sha), path)
