"""Concurrent client harness: many tenants, skewed keyspaces, one pool.

The "million-user" scenario scaled down to a deterministic simulation:
``n_clients`` simulated clients, each bound to a tenant, issue puts and
deletes against a sharded :class:`~repro.service.Service`.  Every
tenant owns a private keyspace of ``keys_per_tenant`` keys, and each
client samples it through one of the repository's workload generators
(Zipfian, hot-cold, uniform) — so tenants have realistic skew, and
different tenants' hot sets land on different shards.

Concurrency is *simulated interleaving*: a seeded RNG picks which
client issues each successive op, so the op stream (and therefore the
exported obs metrics) is byte-identical across runs with the same
:class:`HarnessConfig`.  Wall-clock throughput (aggregate writes/sec)
is measured around the drive loop and reported separately — it never
enters the metrics file, which keeps the determinism contract intact.

:func:`run_serial_baseline` provides the comparison floor: the same op
stream applied to a single shard through per-key scalar ``put`` calls —
no routing, no batching, no coalescing.  The batched sharded service
must beat it; ``repro bench service`` records by how much.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.kvstore import LogStructuredKVStore
from repro.obs import MetricsWriter, Tracer, write_spans
from repro.obs.clock import now_s
from repro.service.router import ConsistentHashRouter
from repro.service.service import Service
from repro.store import StoreConfig
from repro.workloads import (
    HotColdWorkload,
    UniformWorkload,
    Workload,
    ZipfianWorkload,
)

#: Distribution names the harness accepts.
HARNESS_DISTS = ("uniform", "zipf-80-20", "zipf-90-10", "hotcold")

#: Ops drawn from the interleaving RNG per chunk.
_CHUNK = 4096


@dataclasses.dataclass(frozen=True)
class HarnessConfig:
    """Everything that determines a harness run (op stream + service).

    Two runs with equal configs produce byte-identical obs exports.
    """

    n_shards: int = 4
    n_clients: int = 8
    n_tenants: int = 4
    ops: int = 200_000
    keys_per_tenant: int = 4096
    dist: str = "zipf-80-20"
    value_bytes: int = 96
    delete_frac: float = 0.03
    policy: str = "mdc"
    unit_bytes: int = 32
    segment_units: int = 32
    target_fill: float = 0.55
    clean_trigger: int = 2
    clean_batch: int = 4
    batch_size: int = 256
    flush_interval: int = 4
    max_depth: int = 4096
    tick_every: int = 512
    replicas: int = 64
    tenant_spread: float = 1.0
    gc_budget: Optional[int] = None
    gc_max_share: float = 0.5
    free_target: Optional[int] = None
    cleaner: str = "batch"
    pages_per_step: int = 32
    sample_interval: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dist not in HARNESS_DISTS:
            raise ValueError(
                "dist must be one of %s, got %r" % (",".join(HARNESS_DISTS), self.dist)
            )
        if self.cleaner not in ("batch", "incremental"):
            raise ValueError(
                "cleaner must be 'batch' or 'incremental', got %r"
                % (self.cleaner,)
            )
        if self.n_clients < 1 or self.n_tenants < 1:
            raise ValueError("n_clients and n_tenants must be >= 1")
        if self.n_tenants > self.n_clients:
            raise ValueError("every tenant needs at least one client")
        if self.ops < 1:
            raise ValueError("ops must be >= 1")
        if not 0.0 <= self.delete_frac < 1.0:
            raise ValueError("delete_frac must be in [0, 1)")

    def scaled(self, **overrides) -> "HarnessConfig":
        """A copy with some fields replaced."""
        return dataclasses.replace(self, **overrides)

    @classmethod
    def quick(cls, **overrides) -> "HarnessConfig":
        """The CI smoke shape: 4 shards, 8 clients, a small page budget."""
        base = dict(
            ops=24_000,
            keys_per_tenant=1024,
            tick_every=256,
            sample_interval=2048,
        )
        base.update(overrides)
        return cls(**base)


def _tenant_of(client: int, cfg: HarnessConfig) -> str:
    return "t%d" % (client % cfg.n_tenants)


def _client_workload(client: int, cfg: HarnessConfig) -> Workload:
    """The per-client sampler over its tenant's keyspace.

    Clients of one tenant share the keyspace *shape* (same tenant-keyed
    construction seed, so e.g. the Zipfian hot ranks are the tenant's)
    but draw independently (client-keyed stream seed).
    """
    tenant = client % cfg.n_tenants
    # Zipfian/hot-cold membership keys off the construction seed; keep
    # it per-tenant so a tenant's clients agree on which keys are hot.
    shape_seed = cfg.seed * 1_000_003 + tenant
    if cfg.dist == "uniform":
        wl = UniformWorkload(cfg.keys_per_tenant, seed=shape_seed)
    elif cfg.dist == "zipf-80-20":
        wl = ZipfianWorkload.eighty_twenty(cfg.keys_per_tenant, seed=shape_seed)
    elif cfg.dist == "zipf-90-10":
        wl = ZipfianWorkload.ninety_ten(cfg.keys_per_tenant, seed=shape_seed)
    else:
        wl = HotColdWorkload(cfg.keys_per_tenant, seed=shape_seed)
    # Distinct clients must not replay each other's draw sequence.
    wl._rng = np.random.default_rng(cfg.seed * 7_368_787 + client + 1)
    return wl


#: One harness op: ("put"|"delete", tenant, key, value_size_bytes).
HarnessOp = Tuple[str, str, int, int]


def ops_stream(cfg: HarnessConfig) -> Iterator[HarnessOp]:
    """The deterministic interleaved op stream of a harness run."""
    rng = np.random.default_rng(cfg.seed)
    workloads = [_client_workload(c, cfg) for c in range(cfg.n_clients)]
    tenants = [_tenant_of(c, cfg) for c in range(cfg.n_clients)]
    buffers: List[List[int]] = [[] for _ in range(cfg.n_clients)]
    remaining = cfg.ops
    while remaining > 0:
        take = min(_CHUNK, remaining)
        picks = rng.integers(0, cfg.n_clients, size=take)
        deletes = rng.random(take) < cfg.delete_frac
        sizes = rng.integers(1, cfg.value_bytes + 1, size=take)
        for i in range(take):
            client = int(picks[i])
            buf = buffers[client]
            if not buf:
                buf.extend(workloads[client]._sample(256)[::-1].tolist())
            key = buf.pop()
            if deletes[i]:
                yield ("delete", tenants[client], key, 0)
            else:
                yield ("put", tenants[client], key, int(sizes[i]))
        remaining -= take


def _mean_units(cfg: HarnessConfig) -> float:
    """Expected record size in store units for a uniform 1..value_bytes
    value-size draw."""
    total = sum(
        max(1, math.ceil(size / cfg.unit_bytes))
        for size in range(1, cfg.value_bytes + 1)
    )
    return total / cfg.value_bytes


def shard_config(cfg: HarnessConfig, n_shards: Optional[int] = None) -> StoreConfig:
    """Per-shard store geometry sized for the harness keyspace.

    Routes the full ``(tenant, key)`` population through the run's
    router to find the most-loaded shard, then sizes every shard so
    that shard sits at ``target_fill`` — guaranteeing headroom on the
    rest without over-provisioning the pool into a cleaning-free toy.
    """
    n = n_shards if n_shards is not None else cfg.n_shards
    router = ConsistentHashRouter(
        n, replicas=cfg.replicas, seed=cfg.seed, tenant_spread=cfg.tenant_spread
    )
    load = [0 for _ in range(n)]
    for tenant_idx in range(cfg.n_tenants):
        tenant = "t%d" % tenant_idx
        for key in range(cfg.keys_per_tenant):
            load[router.shard_for(key, tenant=tenant)] += 1
    worst = max(load)
    mean_units = _mean_units(cfg)
    live_units = worst * mean_units * 1.15  # routing/size-draw margin
    n_segments = int(
        math.ceil(live_units / (cfg.segment_units * cfg.target_fill))
    ) + cfg.clean_trigger + 4
    n_segments = max(n_segments, 12)
    return StoreConfig(
        n_segments=n_segments,
        segment_units=cfg.segment_units,
        fill_factor=cfg.target_fill,
        clean_trigger=cfg.clean_trigger,
        clean_batch=cfg.clean_batch,
        sort_buffer_segments=0,
    )


def build_service(cfg: HarnessConfig) -> Service:
    """The service a harness run drives, sized per :func:`shard_config`."""
    return Service(
        cfg.n_shards,
        shard_config(cfg),
        policy=cfg.policy,
        unit_bytes=cfg.unit_bytes,
        replicas=cfg.replicas,
        tenant_spread=cfg.tenant_spread,
        batch_size=cfg.batch_size,
        flush_interval=cfg.flush_interval,
        max_depth=cfg.max_depth,
        gc_budget=cfg.gc_budget,
        gc_max_share=cfg.gc_max_share,
        free_target=cfg.free_target,
        cleaner=cfg.cleaner,
        pages_per_step=cfg.pages_per_step,
        seed=cfg.seed,
        sample_interval=cfg.sample_interval,
    )


@dataclasses.dataclass(frozen=True)
class HarnessResult:
    """Outcome of one harness (or serial-baseline) run."""

    label: str
    shards: int
    ops: int
    puts: int
    deletes: int
    elapsed_s: float
    writes_per_sec: float
    wamp_per_shard: List[float]
    wamp_aggregate: float
    wamp_spread: float
    queue_depth_p95: int
    ops_per_shard: List[int]
    batches_flushed: int
    backpressure_flushes: int
    keys_live: int

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    def report(self) -> str:
        lines = [
            "%s: %d ops over %d shard(s) in %.2fs -> %.0f writes/sec"
            % (self.label, self.ops, self.shards, self.elapsed_s, self.writes_per_sec),
            "  aggregate Wamp=%.4f  spread=%.4f  queue p95=%d  batches=%d"
            % (
                self.wamp_aggregate,
                self.wamp_spread,
                self.queue_depth_p95,
                self.batches_flushed,
            ),
        ]
        for i, (wamp, ops) in enumerate(zip(self.wamp_per_shard, self.ops_per_shard)):
            lines.append("  shard %d: ops=%-8d Wamp=%.4f" % (i, ops, wamp))
        return "\n".join(lines)


def run_harness(
    cfg: HarnessConfig,
    metrics_out: Union[None, str, MetricsWriter] = None,
    meta: Optional[Dict] = None,
    trace_out: Optional[str] = None,
    trace_sample: float = 1.0,
    telemetry_out: Optional[str] = None,
) -> HarnessResult:
    """Drive a full harness run; optionally export obs rows.

    The metrics export contains no wall-clock data, so it is
    byte-identical across runs with the same config; throughput lives
    only in the returned result.  ``trace_out``/``telemetry_out`` add
    the wall-clocked trace plane in *separate* files: a causal span
    file (head-sampled at ``trace_sample``) and a per-tick telemetry
    feed for ``repro top``.
    """
    service = build_service(cfg)
    tracer = _attach_instrumentation(
        service, cfg, trace_out, trace_sample, telemetry_out, meta
    )
    puts = deletes = applied = 0
    t0 = now_s()
    for op, tenant, key, size in ops_stream(cfg):
        if op == "put":
            service.put(key, bytes(size), tenant=tenant)
            puts += 1
        else:
            service.delete(key, tenant=tenant)
            deletes += 1
        applied += 1
        if applied % cfg.tick_every == 0:
            service.tick()
    service.flush()
    service.tick()
    elapsed = now_s() - t0
    result = _result_from_service(
        "service[%d shards]" % cfg.n_shards, cfg, service, puts, deletes, elapsed
    )
    if metrics_out is not None:
        run_meta = _run_meta(cfg)
        if meta:
            run_meta.update(meta)
        service.export_rows(metrics_out, run_meta)
    if tracer is not None and trace_out is not None:
        _export_trace(tracer, trace_out, cfg, meta)
    service.close()
    return result


def _attach_instrumentation(
    service: Service,
    cfg: HarnessConfig,
    trace_out: Optional[str],
    trace_sample: float,
    telemetry_out: Optional[str],
    meta: Optional[Dict],
) -> Optional[Tracer]:
    """Wire the optional trace plane into a freshly built service."""
    tracer = None
    if trace_out is not None:
        tracer = Tracer(seed=cfg.seed, sample=trace_sample)
        service.attach_tracer(tracer)
    if telemetry_out is not None:
        run_meta = _run_meta(cfg)
        if meta:
            run_meta.update(meta)
        run_meta["component"] = "telemetry"
        service.telemetry_to(telemetry_out, run_meta)
    return tracer


def _export_trace(
    tracer: Tracer, trace_out: str, cfg: HarnessConfig, meta: Optional[Dict]
) -> int:
    run_meta = _run_meta(cfg)
    if meta:
        run_meta.update(meta)
    run_meta["component"] = "trace"
    run_meta["trace_sample"] = tracer.sample
    return write_spans(trace_out, tracer, run_meta)


def _run_meta(cfg: HarnessConfig) -> Dict:
    """Meta-row payload for an exported run (config only — never
    timing, which would break byte-identical exports)."""
    meta = dataclasses.asdict(cfg)
    meta["workload"] = cfg.dist
    return meta


def _result_from_service(
    label: str,
    cfg: HarnessConfig,
    service: Service,
    puts: int,
    deletes: int,
    elapsed: float,
) -> HarnessResult:
    counters = service.metrics.snapshot().counters
    wamps = service.pool.wamp_per_shard()
    summary = service.pool.stats_summary()
    ops_per_shard = [
        counters.get("shard%d_ops" % i, 0) for i in range(service.pool.n_shards)
    ]
    total = puts + deletes
    return HarnessResult(
        label=label,
        shards=service.pool.n_shards,
        ops=total,
        puts=puts,
        deletes=deletes,
        elapsed_s=elapsed,
        writes_per_sec=total / elapsed if elapsed > 0 else float("inf"),
        wamp_per_shard=wamps,
        wamp_aggregate=summary["wamp_aggregate"],
        wamp_spread=summary["wamp_spread"],
        queue_depth_p95=service.queue_depth_p95(),
        ops_per_shard=ops_per_shard,
        batches_flushed=counters.get("batches_flushed", 0),
        backpressure_flushes=counters.get("backpressure_flushes", 0),
        keys_live=int(summary["keys"]),
    )


def run_serial_baseline(cfg: HarnessConfig) -> HarnessResult:
    """The same op stream on one shard, per-key scalar puts — the
    floor the batched sharded service must beat."""
    kv = LogStructuredKVStore(
        shard_config(cfg, n_shards=1),
        policy=cfg.policy,
        unit_bytes=cfg.unit_bytes,
    )
    puts = deletes = 0
    t0 = now_s()
    for op, tenant, key, size in ops_stream(cfg):
        if op == "put":
            kv.put((tenant, key), bytes(size))
            puts += 1
        else:
            kv.delete((tenant, key))
            deletes += 1
    elapsed = now_s() - t0
    total = puts + deletes
    wamp = kv.write_amplification
    return HarnessResult(
        label="serial[1 shard]",
        shards=1,
        ops=total,
        puts=puts,
        deletes=deletes,
        elapsed_s=elapsed,
        writes_per_sec=total / elapsed if elapsed > 0 else float("inf"),
        wamp_per_shard=[wamp],
        wamp_aggregate=wamp,
        wamp_spread=0.0,
        queue_depth_p95=0,
        ops_per_shard=[total],
        batches_flushed=0,
        backpressure_flushes=0,
        keys_live=len(kv),
    )


# ----------------------------------------------------------------------
# Op-trace files (`repro loadgen` <-> `repro serve --from`)
# ----------------------------------------------------------------------


def write_ops_jsonl(cfg: HarnessConfig, path: str) -> int:
    """Record the harness op stream as JSONL (one header row with the
    generating config, then one row per op); returns the op count."""
    import os

    parent = os.path.dirname(str(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            json.dumps(
                {"type": "loadgen_meta", "config": dataclasses.asdict(cfg)},
                sort_keys=True,
            )
        )
        fh.write("\n")
        for op, tenant, key, size in ops_stream(cfg):
            fh.write(
                json.dumps(
                    {"op": op, "tenant": tenant, "key": key, "size": size},
                    sort_keys=True,
                )
            )
            fh.write("\n")
            n += 1
    return n


def read_ops_jsonl(path: str) -> Tuple[Optional[HarnessConfig], List[HarnessOp]]:
    """Parse a loadgen file back into (config, ops).  The config is
    None when the header is missing (hand-written op files)."""
    cfg: Optional[HarnessConfig] = None
    ops: List[HarnessOp] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("type") == "loadgen_meta":
                cfg = HarnessConfig(**row["config"])
                continue
            ops.append(
                (row["op"], row["tenant"], row["key"], int(row.get("size", 0)))
            )
    return cfg, ops


def replay_ops(
    cfg: HarnessConfig,
    ops: List[HarnessOp],
    metrics_out: Union[None, str, MetricsWriter] = None,
    meta: Optional[Dict] = None,
    trace_out: Optional[str] = None,
    trace_sample: float = 1.0,
    telemetry_out: Optional[str] = None,
) -> HarnessResult:
    """Apply a recorded op list through a fresh service built from
    ``cfg`` (the serve-side half of the loadgen/serve pair)."""
    service = build_service(cfg)
    tracer = _attach_instrumentation(
        service, cfg, trace_out, trace_sample, telemetry_out, meta
    )
    puts = deletes = applied = 0
    t0 = now_s()
    for op, tenant, key, size in ops:
        if op == "put":
            service.put(key, bytes(size), tenant=tenant)
            puts += 1
        else:
            service.delete(key, tenant=tenant)
            deletes += 1
        applied += 1
        if applied % cfg.tick_every == 0:
            service.tick()
    service.flush()
    service.tick()
    elapsed = now_s() - t0
    result = _result_from_service(
        "service[%d shards]" % cfg.n_shards, cfg, service, puts, deletes, elapsed
    )
    if metrics_out is not None:
        run_meta = _run_meta(cfg)
        if meta:
            run_meta.update(meta)
        service.export_rows(metrics_out, run_meta)
    if tracer is not None and trace_out is not None:
        _export_trace(tracer, trace_out, cfg, meta)
    service.close()
    return result
